#include "service/engine_cache.hpp"

#include <utility>

#include "common/error.hpp"

namespace pd::service {

EngineCache::EngineCache(std::size_t capacity, EngineParams params)
    : capacity_(capacity), params_(std::move(params)) {
  PD_CHECK_MSG(capacity_ > 0, "EngineCache: capacity must be >= 1");
}

void EngineCache::register_plan(const std::string& plan, MatrixSource source) {
  PD_CHECK_MSG(static_cast<bool>(source),
               "EngineCache: empty MatrixSource for plan '" + plan + "'");
  std::lock_guard<pd::Mutex> lock(mu_);
  sources_[plan] = std::move(source);
  entries_.erase(plan);
  // A replaced source may produce a different matrix; its tuning is stale.
  tuned_.erase(plan);
}

bool EngineCache::has_plan(const std::string& plan) const {
  std::lock_guard<pd::Mutex> lock(mu_);
  return sources_.count(plan) != 0;
}

std::shared_ptr<kernels::DoseEngine> EngineCache::acquire(
    const std::string& plan) {
  MatrixSource source;
  {
    std::unique_lock<pd::Mutex> lock(mu_);
    for (;;) {
      const auto entry = entries_.find(plan);
      if (entry != entries_.end()) {
        ++hits_;
        entry->second.last_use = ++use_tick_;
        // The local copy pins the requested engine before the retry below,
        // so a hit can never evict the entry it is about to return.
        std::shared_ptr<kernels::DoseEngine> engine = entry->second.engine;
        // Retry eviction on hits too: an insert that found every candidate
        // pinned leaves the cache over capacity, and without this the
        // overshoot would persist for as long as traffic keeps hitting.
        evict_over_capacity();
        return engine;
      }
      if (building_.count(plan) == 0) {
        break;
      }
      // Another worker is building this plan's engine; share its result
      // instead of generating the matrix twice.  Attested unpredicated
      // wait: the enclosing for(;;) re-checks entries_/building_ on wake.
      build_cv_.wait_unpredicated(lock);
    }
    const auto src = sources_.find(plan);
    PD_CHECK_MSG(src != sources_.end(),
                 "EngineCache: unknown plan '" + plan + "'");
    source = src->second;
    ++misses_;
    building_.insert(plan);
  }

  // Build outside the lock: matrix generation and engine analysis are the
  // expensive parts and must not serialize unrelated plans.
  std::shared_ptr<kernels::DoseEngine> engine;
  try {
    engine = std::make_shared<kernels::DoseEngine>(
        source(), params_.device, params_.mode, params_.threads_per_block,
        params_.family, params_.backend);
    if (params_.backend == kernels::DoseEngine::Backend::kNative) {
      engine->set_native_threads(params_.native_threads);
    } else {
      engine->set_engine_options(params_.engine_options);
    }
    if (params_.autotune) {
      // Tune once per register_plan: a cached config is re-applied to the
      // rebuilt engine without re-measuring, so LRU churn on a hot plan
      // never pays the tuning cost twice.  building_ already serializes
      // same-plan builds, so no two workers can tune one plan concurrently.
      std::shared_ptr<const kernels::TunedConfig> config;
      {
        std::lock_guard<pd::Mutex> lock(mu_);
        const auto it = tuned_.find(plan);
        if (it != tuned_.end()) {
          config = it->second;
        }
      }
      if (config == nullptr) {
        config = std::make_shared<const kernels::TunedConfig>(
            kernels::autotune_fast_tier(*engine, params_.tune_options));
        std::lock_guard<pd::Mutex> lock(mu_);
        tuned_[plan] = config;
        ++tunes_;
      }
      kernels::apply_tuned(*engine, *config);
    }
  } catch (...) {
    std::lock_guard<pd::Mutex> lock(mu_);
    building_.erase(plan);
    build_cv_.notify_all();
    throw;
  }

  std::lock_guard<pd::Mutex> lock(mu_);
  building_.erase(plan);
  entries_[plan] = Entry{engine, ++use_tick_};
  evict_over_capacity();
  build_cv_.notify_all();
  return engine;
}

void EngineCache::evict_over_capacity() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.engine.use_count() > 1) {
        continue;  // pinned by an in-flight batch — never destroy under it
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;  // everything pinned; transient overshoot, retried on every
                // subsequent acquire (hit or miss)
    }
    entries_.erase(victim);
    ++evictions_;
  }
}

std::shared_ptr<const kernels::TunedConfig> EngineCache::tuned_config(
    const std::string& plan) const {
  std::lock_guard<pd::Mutex> lock(mu_);
  const auto it = tuned_.find(plan);
  return it == tuned_.end() ? nullptr : it->second;
}

EngineCacheStats EngineCache::stats() const {
  std::lock_guard<pd::Mutex> lock(mu_);
  EngineCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident = entries_.size();
  s.tunes = tunes_;
  s.tuned_plans = tuned_.size();
  for (const auto& [plan, entry] : entries_) {
    (void)plan;
    if (entry.engine.use_count() > 1) {
      ++s.pinned;
    }
  }
  return s;
}

}  // namespace pd::service
