#pragma once
// simcheck — a compute-sanitizer-style correctness analyzer for gpusim
// kernels.
//
// Real CUDA development leans on `compute-sanitizer` to catch the hazards
// that silently corrupt results: out-of-bounds accesses (memcheck),
// shared-memory races across missing barriers (racecheck), divergent barrier
// participation (synccheck) and reads of never-written memory (initcheck).
// The simulator executes the same SIMT model, so it can host the equivalent
// analyses natively — plus one the hardware tool cannot offer: a
// *determinism lint* that flags floating-point accumulation through
// unordered atomics, the exact hazard class the paper's §II-D
// reproducibility contract forbids.
//
// The layer is strictly opt-in (Gpu::enable_check).  When disabled, the only
// cost on any memory path is one null-pointer test per warp instruction, and
// the simulation output — dose bits, traffic counters, cache state — is
// bitwise identical to an uninstrumented build (asserted by
// tests/test_engine_equivalence.cpp).
//
// Shadow-state model (docs/simcheck.md has the full write-up):
//  * global memory — launchers register the launch's device-visible buffers
//    (base, size, label, initialized?).  Every lane access is checked for
//    containment; buffers registered as outputs carry a per-byte
//    written-shadow that initcheck consults on reads.  An empty registration
//    table disables memcheck/initcheck for the launch (no information).
//  * shared memory — each BlockCtx arena carries a per-byte shadow record
//    {barrier epoch, writer warp, reader warps, written-ever}.  The barrier
//    epoch is (phase index, per-warp sync count); two accesses to one byte
//    race iff they happen in the same epoch from different warps with at
//    least one write.
//  * barriers — for_each_warp phases open/close a participation frame;
//    warps of one block must report the same sync() count per phase, and a
//    sync() issued with a partial lane mask is divergent by definition.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/lanes.hpp"

namespace pd::gpusim {

/// The violation taxonomy, mirroring compute-sanitizer's tool names.
enum class ViolationKind : std::uint8_t {
  kGlobalOutOfBounds,      ///< memcheck: global access outside tracked buffers.
  kSharedOutOfBounds,      ///< memcheck: shared access outside block arenas.
  kSharedRace,             ///< racecheck: same-epoch W/W or R/W hazard.
  kBarrierDivergence,      ///< synccheck: unequal barrier participation.
  kUninitRead,             ///< initcheck: read of never-written memory.
  kNonDeterministicAtomic, ///< determinism-lint: unordered FP accumulation.
};

const char* violation_kind_name(ViolationKind kind);

/// One structured finding: what happened, where in the grid, and on which
/// buffer.  `detail` is a human-readable sentence for reports.
struct Violation {
  ViolationKind kind = ViolationKind::kGlobalOutOfBounds;
  std::uint64_t block = 0;
  unsigned warp = 0;       ///< warp index within the block
  unsigned lane = 0;
  std::uint64_t address = 0;
  std::string buffer;      ///< label of the tracked buffer, if resolvable
  std::string detail;
};

/// Which analyses run.  All default on; callers can narrow the scope (e.g.
/// racecheck-only) exactly like compute-sanitizer's --tool flag.
struct CheckConfig {
  bool memcheck = true;
  bool racecheck = true;
  bool synccheck = true;
  bool initcheck = true;
  bool determinism_lint = true;
  /// Recording cap; further findings only bump `CheckReport::suppressed`.
  std::size_t max_violations = 256;

  static CheckConfig all() { return CheckConfig{}; }
};

/// Accumulated findings across every checked launch of the context.
struct CheckReport {
  std::vector<Violation> violations;
  std::uint64_t suppressed = 0;        ///< findings past max_violations
  std::uint64_t launches_checked = 0;

  bool clean() const { return violations.empty() && suppressed == 0; }
  std::uint64_t count(ViolationKind kind) const;
  /// Multi-line human-readable summary (the CLI's --check output).
  std::string summary() const;
};

/// The shadow-state owner.  One per Gpu; hooks are called from WarpCtx /
/// BlockCtx / the launch loop only when checking is enabled, so none of this
/// is on the disabled path.  Checked launches run phase 1 serially (the
/// shadow state is not thread-safe, and serial execution keeps findings
/// deterministic); counters are unaffected because they are mode-invariant.
class CheckContext {
 public:
  explicit CheckContext(CheckConfig config) : config_(config) {}

  // --- host-side buffer registration (kernel launchers) --------------------

  /// Forget all tracked global buffers and their written-shadows.  Launchers
  /// call this before registering their launch's buffer set.
  void clear_tracking();

  /// Register a device-visible buffer.  `initialized` buffers (inputs) pass
  /// initcheck unconditionally; outputs start with a fully-unwritten shadow.
  void track_global(const void* ptr, std::size_t bytes, std::string label,
                    bool initialized);

  // --- launch lifecycle (Gpu::launch) --------------------------------------

  void begin_launch(std::uint64_t num_blocks, unsigned warps_per_block);
  void end_launch();

  // --- warp-level hooks (WarpCtx) ------------------------------------------

  /// One lane touching global bytes [address, address + size).
  void global_access(std::uint64_t address, unsigned size, bool write,
                     std::uint64_t block, unsigned warp, unsigned lane);

  /// One lane touching shared bytes [address, address + size).
  void shared_access(std::uint64_t address, unsigned size, bool write,
                     std::uint64_t block, unsigned warp, unsigned lane);

  /// A floating-point atomicAdd issued by `warp`; flagged when the launch
  /// has more than one warp (the accumulation order then depends on the
  /// block schedule — the §II-D hazard).  Deduplicated per launch.
  void fp_atomic(std::uint64_t address, std::uint64_t block, unsigned warp);

  /// A __syncthreads() participation mark; `mask` is the active lane mask
  /// (anything narrower than the full warp is divergent by definition).
  void sync_mark(std::uint64_t block, unsigned warp, LaneMask mask);

  // --- block-scope hooks (BlockCtx) ----------------------------------------

  /// A shared_alloc arena of `block` (registered at allocation).
  void shared_arena(std::uint64_t block, const void* base, std::size_t bytes);

  /// for_each_warp phase bracket: begin opens a barrier-participation frame,
  /// end verifies equal sync() counts and advances the barrier epoch.
  void phase_begin(std::uint64_t block, unsigned warps);
  void phase_end(std::uint64_t block);

  const CheckConfig& config() const { return config_; }
  const CheckReport& report() const { return report_; }
  void clear_report() { report_ = CheckReport{}; }

 private:
  struct TrackedBuffer {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::string label;
    bool initialized = false;
    std::vector<bool> written;  ///< per byte; empty when initialized
  };

  /// Per-byte shared shadow: the last access record within one barrier
  /// epoch.  Keeping one record per byte makes the model a last-access
  /// approximation (see docs/simcheck.md for the limitation discussion).
  struct ByteShadow {
    std::uint32_t phase = kNoEpoch;
    std::uint32_t seg = 0;
    std::int32_t writer = kNoWarp;
    std::int32_t reader = kNoWarp;
    bool multi_reader = false;
    bool written_ever = false;
  };
  struct SharedArena {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::vector<ByteShadow> bytes;
  };
  struct BlockState {
    std::vector<SharedArena> arenas;
    std::uint32_t phase = 0;
    bool phase_open = false;
    std::vector<std::uint32_t> sync_counts;  ///< per warp, current phase
  };

  static constexpr std::uint32_t kNoEpoch = 0xffffffffu;
  static constexpr std::int32_t kNoWarp = -1;

  void record(Violation v);
  TrackedBuffer* find_buffer(std::uint64_t address);
  SharedArena* find_arena(BlockState& state, std::uint64_t address);

  CheckConfig config_;
  CheckReport report_;
  std::vector<TrackedBuffer> buffers_;  ///< sorted by begin
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  std::uint64_t launch_total_warps_ = 0;
  bool fp_atomic_flagged_ = false;  ///< per-launch dedup for the lint
};

/// True when the PROTONDOSE_SIMCHECK environment variable requests checking
/// (values "1", "true", "on", "yes"); DoseEngine and the benches honor it.
bool simcheck_env_enabled();

}  // namespace pd::gpusim
