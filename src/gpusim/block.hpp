#pragma once
// Block-scope execution: shared memory and barrier-phased cooperation.
//
// The warp-synchronous engine executes one warp to completion at a time, so
// a literal __syncthreads() cannot suspend mid-warp.  Instead, block
// cooperation is expressed the way barrier-correct kernels are actually
// structured: as a sequence of *phases*, each a function every warp of the
// block runs, with an implicit barrier between phases:
//
//   gpu.run_blocks(cfg, [&](BlockCtx& b) {
//     auto tile = b.shared_alloc<float>(1024);
//     b.for_each_warp([&](WarpCtx& w) { /* phase 1: fill tile   */ });
//     b.for_each_warp([&](WarpCtx& w) { /* phase 2: reduce tile */ });
//   });
//
// Shared memory is a per-block arena whose accesses are counted separately
// from the L2/DRAM stream (they are on-chip), including a bank-conflict
// model: lanes of one warp hitting the same bank serialize, which is the
// classic shared-memory performance hazard.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "gpusim/warp.hpp"

namespace pd::gpusim {

class BlockCtx {
 public:
  BlockCtx(MemRoute route, ComputeCounters& compute, SharedCounters& shared,
           std::uint64_t block_idx, unsigned block_dim, std::uint64_t grid_dim,
           std::size_t shared_limit_bytes)
      : route_(route),
        compute_(&compute),
        shared_counters_(&shared),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_limit_(shared_limit_bytes) {}

  /// Legacy convenience: direct routing into a MemoryModel (serial engine,
  /// unit tests).
  BlockCtx(MemoryModel& mem, ComputeCounters& compute, SharedCounters& shared,
           std::uint64_t block_idx, unsigned block_dim, std::uint64_t grid_dim,
           std::size_t shared_limit_bytes)
      : BlockCtx(MemRoute::direct(mem), compute, shared, block_idx, block_dim,
                 grid_dim, shared_limit_bytes) {}

  std::uint64_t block_idx() const { return block_idx_; }
  unsigned block_dim() const { return block_dim_; }
  unsigned warps_per_block() const { return block_dim_ / kWarpSize; }
  std::uint64_t grid_dim() const { return grid_dim_; }

  /// Allocate n elements of block-shared storage.  Throws if the block
  /// exceeds the device limit — the budget check is overflow-safe and active
  /// in every build.  Like real __shared__ memory, the storage starts
  /// *uninitialized*; only under simcheck is it zero-filled (deterministic
  /// shadow state) and registered with the arena tracker so initcheck can
  /// flag reads of never-written slots.
  template <typename T>
  T* shared_alloc(std::size_t n) {
    PD_CHECK_MSG(shared_used_ <= shared_limit_ &&
                     n <= (shared_limit_ - shared_used_) / sizeof(T),
                 "shared_alloc: exceeds the per-block shared memory limit");
    const std::size_t bytes = n * sizeof(T);
    arenas_.push_back(std::make_unique_for_overwrite<std::byte[]>(bytes));
    std::byte* base = arenas_.back().get();
    shared_used_ += bytes;
    if (CheckContext* chk = route_.check()) {
      std::memset(base, 0, bytes);
      chk->shared_arena(block_idx_, base, bytes);
    }
    return reinterpret_cast<T*>(base);
  }

  /// Run `fn(WarpCtx&)` for every warp of this block.  Consecutive calls are
  /// separated by an implicit __syncthreads().
  template <typename Fn>
  void for_each_warp(Fn&& fn) {
    CheckContext* chk = route_.check();
    if (chk != nullptr) {
      chk->phase_begin(block_idx_, warps_per_block());
    }
    for (unsigned w = 0; w < warps_per_block(); ++w) {
      WarpCtx ctx(route_, *compute_, block_idx_, w, block_dim_, grid_dim_);
      ctx.attach_shared(shared_counters_);
      fn(ctx);
    }
    if (chk != nullptr) {
      chk->phase_end(block_idx_);
    }
  }

 private:
  MemRoute route_;
  ComputeCounters* compute_;
  SharedCounters* shared_counters_;
  std::uint64_t block_idx_;
  unsigned block_dim_;
  std::uint64_t grid_dim_;
  std::size_t shared_limit_;
  std::size_t shared_used_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> arenas_;
};

}  // namespace pd::gpusim
