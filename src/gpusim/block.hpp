#pragma once
// Block-scope execution: shared memory and barrier-phased cooperation.
//
// The warp-synchronous engine executes one warp to completion at a time, so
// a literal __syncthreads() cannot suspend mid-warp.  Instead, block
// cooperation is expressed the way barrier-correct kernels are actually
// structured: as a sequence of *phases*, each a function every warp of the
// block runs, with an implicit barrier between phases:
//
//   gpu.run_blocks(cfg, [&](BlockCtx& b) {
//     auto tile = b.shared_alloc<float>(1024);
//     b.for_each_warp([&](WarpCtx& w) { /* phase 1: fill tile   */ });
//     b.for_each_warp([&](WarpCtx& w) { /* phase 2: reduce tile */ });
//   });
//
// Shared memory is a per-block arena whose accesses are counted separately
// from the L2/DRAM stream (they are on-chip), including a bank-conflict
// model: lanes of one warp hitting the same bank serialize, which is the
// classic shared-memory performance hazard.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "gpusim/warp.hpp"

namespace pd::gpusim {

class BlockCtx {
 public:
  BlockCtx(MemRoute route, ComputeCounters& compute, SharedCounters& shared,
           std::uint64_t block_idx, unsigned block_dim, std::uint64_t grid_dim,
           std::size_t shared_limit_bytes)
      : route_(route),
        compute_(&compute),
        shared_counters_(&shared),
        block_idx_(block_idx),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shared_limit_(shared_limit_bytes) {}

  /// Legacy convenience: direct routing into a MemoryModel (serial engine,
  /// unit tests).
  BlockCtx(MemoryModel& mem, ComputeCounters& compute, SharedCounters& shared,
           std::uint64_t block_idx, unsigned block_dim, std::uint64_t grid_dim,
           std::size_t shared_limit_bytes)
      : BlockCtx(MemRoute::direct(mem), compute, shared, block_idx, block_dim,
                 grid_dim, shared_limit_bytes) {}

  std::uint64_t block_idx() const { return block_idx_; }
  unsigned block_dim() const { return block_dim_; }
  unsigned warps_per_block() const { return block_dim_ / kWarpSize; }
  std::uint64_t grid_dim() const { return grid_dim_; }

  /// Allocate n elements of block-shared storage (zero-initialized, like
  /// static __shared__).  Throws if the block exceeds the device limit.
  template <typename T>
  T* shared_alloc(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    PD_CHECK_MSG(shared_used_ + bytes <= shared_limit_,
                 "shared_alloc: exceeds the per-block shared memory limit");
    arenas_.emplace_back(bytes, std::byte{0});
    shared_used_ += bytes;
    return reinterpret_cast<T*>(arenas_.back().data());
  }

  /// Run `fn(WarpCtx&)` for every warp of this block.  Consecutive calls are
  /// separated by an implicit __syncthreads().
  template <typename Fn>
  void for_each_warp(Fn&& fn) {
    for (unsigned w = 0; w < warps_per_block(); ++w) {
      WarpCtx ctx(route_, *compute_, block_idx_, w, block_dim_, grid_dim_);
      ctx.attach_shared(shared_counters_);
      fn(ctx);
    }
  }

 private:
  MemRoute route_;
  ComputeCounters* compute_;
  SharedCounters* shared_counters_;
  std::uint64_t block_idx_;
  unsigned block_dim_;
  std::uint64_t grid_dim_;
  std::size_t shared_limit_;
  std::size_t shared_used_ = 0;
  std::vector<std::vector<std::byte>> arenas_;
};

}  // namespace pd::gpusim
