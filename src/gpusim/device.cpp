#include "gpusim/device.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::gpusim {

DeviceSpec make_a100() {
  DeviceSpec d;
  d.name = "A100";
  d.peak_bw_gbs = 1555.0;
  d.peak_fp64_gflops = 9700.0;
  d.peak_fp32_gflops = 19500.0;
  d.l2_bytes = 40ull * 1024 * 1024;
  d.l2_bw_gbs = 5100.0;
  d.num_sms = 108;
  d.sm_clock_ghz = 1.41;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.regs_per_sm = 65536;
  // Calibrated: paper reports 80–87% of peak DRAM bandwidth achieved on the
  // liver cases (Section V-B).
  d.mem_efficiency = 0.88;
  d.atomic_gops = 58.0;
  d.mlp_row_scale = 75.0;
  d.launch_overhead_s = 1.5e-6;
  return d;
}

DeviceSpec make_v100() {
  DeviceSpec d;
  d.name = "V100";
  d.peak_bw_gbs = 897.0;
  d.peak_fp64_gflops = 7000.0;
  d.peak_fp32_gflops = 14000.0;
  d.l2_bytes = 6ull * 1024 * 1024;
  d.l2_bw_gbs = 3000.0;
  d.num_sms = 80;
  d.sm_clock_ghz = 1.53;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.regs_per_sm = 65536;
  // Paper: ~80–88% of peak achieved on V100 as well.
  d.mem_efficiency = 0.86;
  d.atomic_gops = 34.0;
  d.mlp_row_scale = 75.0;
  d.launch_overhead_s = 2.0e-6;
  return d;
}

DeviceSpec make_p100() {
  DeviceSpec d;
  d.name = "P100";
  d.peak_bw_gbs = 732.0;
  d.peak_fp64_gflops = 4700.0;
  d.peak_fp32_gflops = 9300.0;
  d.l2_bytes = 4ull * 1024 * 1024;
  d.l2_bw_gbs = 2000.0;
  d.num_sms = 56;
  d.sm_clock_ghz = 1.33;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.regs_per_sm = 65536;
  // Calibrated: the paper measures only ~41% of peak bandwidth on P100 and
  // explicitly defers the explanation to future work; we encode the observed
  // fraction (pre-Volta memory subsystem, no independent thread scheduling).
  d.mem_efficiency = 0.49;
  d.atomic_gops = 12.0;
  d.mlp_row_scale = 75.0;
  d.launch_overhead_s = 2.5e-6;
  return d;
}

DeviceSpec make_h100() {
  DeviceSpec d;
  d.name = "H100";
  d.peak_bw_gbs = 3350.0;
  d.peak_fp64_gflops = 34000.0;
  d.peak_fp32_gflops = 67000.0;
  d.l2_bytes = 50ull * 1024 * 1024;
  d.l2_bw_gbs = 11000.0;
  d.num_sms = 132;
  d.sm_clock_ghz = 1.83;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.regs_per_sm = 65536;
  // Assumed efficiency: same achieved-BW fraction as the A100 (no
  // measurement to calibrate against — this device is a model prediction).
  d.mem_efficiency = 0.88;
  d.atomic_gops = 110.0;
  d.mlp_row_scale = 75.0;
  d.launch_overhead_s = 1.5e-6;
  return d;
}

Occupancy compute_occupancy(const DeviceSpec& spec, unsigned threads_per_block,
                            unsigned regs_per_thread) {
  Occupancy occ;
  if (threads_per_block == 0 || threads_per_block > spec.max_threads_per_block ||
      threads_per_block % 32 != 0) {
    occ.limiter = Occupancy::Limiter::kInvalid;
    return occ;
  }
  PD_CHECK_MSG(regs_per_thread > 0, "occupancy: regs_per_thread must be > 0");

  const unsigned by_threads = spec.max_threads_per_sm / threads_per_block;
  const unsigned by_blocks = spec.max_blocks_per_sm;
  const unsigned regs_per_block = regs_per_thread * threads_per_block;
  const unsigned by_regs = spec.regs_per_sm / regs_per_block;

  const unsigned blocks = std::min({by_threads, by_blocks, by_regs});
  occ.blocks_per_sm = blocks;
  occ.active_threads_per_sm = blocks * threads_per_block;
  occ.fraction = static_cast<double>(occ.active_threads_per_sm) /
                 static_cast<double>(spec.max_threads_per_sm);
  if (blocks == 0) {
    occ.limiter = Occupancy::Limiter::kInvalid;
  } else if (blocks == by_regs && by_regs < by_threads && by_regs < by_blocks) {
    occ.limiter = Occupancy::Limiter::kRegisters;
  } else if (blocks == by_blocks && by_blocks < by_threads) {
    occ.limiter = Occupancy::Limiter::kBlocks;
  } else {
    occ.limiter = Occupancy::Limiter::kThreads;
  }
  return occ;
}

const char* to_string(Occupancy::Limiter limiter) {
  switch (limiter) {
    case Occupancy::Limiter::kThreads: return "threads";
    case Occupancy::Limiter::kBlocks: return "blocks";
    case Occupancy::Limiter::kRegisters: return "registers";
    case Occupancy::Limiter::kInvalid: return "invalid";
  }
  return "unknown";
}

}  // namespace pd::gpusim
