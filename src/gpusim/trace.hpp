#pragma once
// Trace-driven execution: the engine's TraceMode and the per-block sector
// trace that decouples *functional* kernel execution from *cache* simulation.
//
// In TraceMode::kTraceReplay the engine runs in two phases.  Phase 1 executes
// every warp functionally (optionally in parallel across blocks) while the
// coalescer compacts each memory instruction into its distinct 32-byte
// sectors, appended to the owning block's BlockTrace.  Phase 2 replays the
// block traces through the cache model in the launch's schedule order.
// Because a block's trace preserves the exact intra-block instruction order
// and the replay preserves the inter-block schedule order, the traffic
// counters are bitwise identical to the single-pass serial engine for every
// schedule seed — the simulator-level analogue of the paper's §II-D
// reproducibility argument.
//
// TraceMode::kFunctionalOnly drops phase 2 (and the coalescer) entirely for
// callers that only need the computed values, e.g. optimizer inner loops.

#include <cstdint>
#include <vector>

#include "gpusim/lanes.hpp"

namespace pd::gpusim {

/// How Gpu::run / run_blocks executes a launch.
enum class TraceMode {
  kSerial,         ///< Legacy single pass: execute + cache-simulate inline.
  kTraceReplay,    ///< Phase 1 functional (parallelizable), phase 2 replay.
  kFunctionalOnly, ///< Phase 1 only: real results, no traffic simulation.
};

const char* to_string(TraceMode mode);

/// The kind of memory instruction a trace record describes.  Replay must
/// reproduce the per-kind counter updates of the direct path exactly.
enum class TraceOp : std::uint8_t {
  kWarp = 0,    ///< Coalesced warp-level vector request.
  kScalar = 1,  ///< Uniform (broadcast) access.
  kAtomic = 2,  ///< FP atomic read-modify-write at L2.
};

// Trace encoding: one header word followed by `count` raw sector indices.
// Header layout: bits [0,2) = TraceOp, bit 2 = write flag, bits [3,64) =
// sector count.  Sector indices are byte addresses divided by the 32-byte
// sector size, so they fit comfortably below 2^59.
inline constexpr unsigned kTraceOpBits = 2;
inline constexpr std::uint64_t kTraceOpMask = (1u << kTraceOpBits) - 1;
inline constexpr unsigned kTraceWriteBit = kTraceOpBits;
inline constexpr unsigned kTraceCountShift = kTraceOpBits + 1;

/// One block's compacted sector-access trace (phase-1 output).  Records are
/// appended in warp execution order; blocks never share a BlockTrace, so
/// phase 1 needs no synchronization around it.
class BlockTrace {
 public:
  void record(TraceOp op, bool write, const std::uint64_t* sectors,
              std::uint64_t count) {
    words_.push_back((count << kTraceCountShift) |
                     (static_cast<std::uint64_t>(write) << kTraceWriteBit) |
                     static_cast<std::uint64_t>(op));
    words_.insert(words_.end(), sectors, sectors + count);
  }

  bool empty() const { return words_.empty(); }
  std::size_t size_words() const { return words_.size(); }
  void clear() { words_.clear(); }
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace pd::gpusim
