#include "gpusim/memory.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::gpusim {

namespace {
constexpr unsigned kSector = DeviceSpec::kSectorBytes;

/// Upper bound on the sectors one request can span: every active lane can
/// touch ceil(size / kSector) sectors plus one more for a straddling start.
unsigned max_sectors_for(unsigned size, LaneMask mask) {
  const unsigned per_lane = (size - 1) / kSector + 2;
  return popcount_mask(mask) * per_lane;
}

}  // namespace

double TrafficCounters::sectors_per_request() const {
  if (warp_requests == 0) {
    return 0.0;
  }
  return static_cast<double>(sectors_requested) /
         static_cast<double>(warp_requests);
}

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& o) {
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  l2_read_sectors += o.l2_read_sectors;
  l2_write_sectors += o.l2_write_sectors;
  l2_read_hits += o.l2_read_hits;
  l2_write_hits += o.l2_write_hits;
  l2_atomic_ops += o.l2_atomic_ops;
  warp_requests += o.warp_requests;
  sectors_requested += o.sectors_requested;
  scalar_requests += o.scalar_requests;
  scalar_sectors += o.scalar_sectors;
  return *this;
}

void coalesce_warp_sectors(const Lanes<std::uint64_t>& addr, unsigned size,
                           LaneMask mask, SectorBuffer& out) {
  out.reserve(max_sectors_for(size, mask));
  std::uint64_t* data = out.data;
  unsigned n = 0;
  bool monotone = true;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(mask, lane)) {
      continue;
    }
    const std::uint64_t first = addr[lane] / kSector;
    const std::uint64_t last = (addr[lane] + size - 1) / kSector;
    for (std::uint64_t s = first; s <= last; ++s) {
      if (n != 0 && data[n - 1] == s) {
        continue;  // repeat of the previous sector: the dominant duplicate
      }
      if (monotone) {
        if (n == 0 || s > data[n - 1]) {
          data[n++] = s;
          continue;
        }
        monotone = false;  // stream went backwards: full dedup from here on
      }
      bool seen = false;
      for (unsigned i = 0; i < n; ++i) {
        if (data[i] == s) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        data[n++] = s;
      }
    }
  }
  if (!monotone) {
    // Restore the canonical ascending probe order the sort-based coalescer
    // produced, so cache behaviour is bit-identical on non-monotone streams.
    std::sort(data, data + n);
  }
  out.count = n;
}

void coalesce_warp_sectors_reference(const Lanes<std::uint64_t>& addr,
                                     unsigned size, LaneMask mask,
                                     SectorBuffer& out) {
  out.reserve(max_sectors_for(size, mask));
  std::uint64_t* data = out.data;
  unsigned n = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(mask, lane)) {
      continue;
    }
    const std::uint64_t first = addr[lane] / kSector;
    const std::uint64_t last = (addr[lane] + size - 1) / kSector;
    for (std::uint64_t s = first; s <= last; ++s) {
      data[n++] = s;
    }
  }
  std::sort(data, data + n);
  out.count = static_cast<unsigned>(std::unique(data, data + n) - data);
}

CacheModel::CacheModel(std::uint64_t capacity_bytes, unsigned ways)
    : capacity_bytes_(capacity_bytes), ways_(ways) {
  PD_CHECK_MSG(ways_ > 0, "CacheModel: need at least one way");
  PD_CHECK_MSG(capacity_bytes_ >= kSector * ways_, "CacheModel: capacity too small");
  PD_CHECK_MSG(ways_ <= 0xffffu, "CacheModel: too many ways");
  sets_ = capacity_bytes_ / kSector / ways_;
  lines_.assign(sets_ * ways_, Way{});
  set_tick_.assign(sets_, 0);
  mru_way_.assign(sets_, 0);
}

bool CacheModel::hit_way(Way& way, bool write, TrafficCounters& tc,
                         std::uint64_t stamp) {
  way.stamp = stamp;
  way.dirty = way.dirty || write;
  if (write) {
    ++tc.l2_write_hits;
  } else {
    ++tc.l2_read_hits;
  }
  return true;
}

bool CacheModel::fill_way(Way* base, std::uint64_t sector_index, bool write,
                          TrafficCounters& tc, std::uint64_t stamp,
                          unsigned* way_out) {
  // Miss: fill from DRAM (write-allocate).  Prefer an invalid way; otherwise
  // evict the least-recently-used one.
  unsigned victim = ways_;
  for (unsigned w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
  }
  if (victim == ways_) {
    victim = 0;
    for (unsigned w = 1; w < ways_; ++w) {
      if (base[w].stamp < base[victim].stamp) {
        victim = w;
      }
    }
  }
  Way& way = base[victim];
  if (way.valid && way.dirty) {
    tc.dram_write_bytes += kSector;
  }
  tc.dram_read_bytes += kSector;
  way.tag = sector_index;
  way.stamp = stamp;
  way.valid = true;
  way.dirty = write;
  *way_out = victim;
  return false;
}

bool CacheModel::access(std::uint64_t sector_index, bool write,
                        TrafficCounters& tc) {
  const std::size_t set = static_cast<std::size_t>(sector_index % sets_);
  Way* base = &lines_[set * ways_];
  const std::uint64_t stamp = ++set_tick_[set];

  if (write) {
    ++tc.l2_write_sectors;
  } else {
    ++tc.l2_read_sectors;
  }

  // MRU front check: streaming kernels re-touch the set's most recent line
  // far more often than any other way, so one compare resolves most hits.
  const unsigned mru = mru_way_[set];
  if (base[mru].valid && base[mru].tag == sector_index) {
    return hit_way(base[mru], write, tc, stamp);
  }
  for (unsigned w = 0; w < ways_; ++w) {
    if (w == mru) {
      continue;
    }
    Way& way = base[w];
    if (way.valid && way.tag == sector_index) {
      mru_way_[set] = static_cast<std::uint16_t>(w);
      return hit_way(way, write, tc, stamp);
    }
  }
  unsigned filled = 0;
  fill_way(base, sector_index, write, tc, stamp, &filled);
  mru_way_[set] = static_cast<std::uint16_t>(filled);
  return false;
}

bool CacheModel::access_reference(std::uint64_t sector_index, bool write,
                                  TrafficCounters& tc) {
  const std::size_t set = static_cast<std::size_t>(sector_index % sets_);
  Way* base = &lines_[set * ways_];
  ++tick_;

  if (write) {
    ++tc.l2_write_sectors;
  } else {
    ++tc.l2_read_sectors;
  }

  for (unsigned w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == sector_index) {
      return hit_way(way, write, tc, tick_);
    }
  }
  unsigned filled = 0;
  return fill_way(base, sector_index, write, tc, tick_, &filled);
}

void CacheModel::flush_dirty(TrafficCounters& tc) {
  for (Way& way : lines_) {
    if (way.valid && way.dirty) {
      tc.dram_write_bytes += kSector;
      way.dirty = false;
    }
  }
}

void CacheModel::invalidate() {
  std::fill(lines_.begin(), lines_.end(), Way{});
  std::fill(set_tick_.begin(), set_tick_.end(), 0);
  std::fill(mru_way_.begin(), mru_way_.end(), std::uint16_t{0});
  tick_ = 0;
}

MemoryModel::MemoryModel(const DeviceSpec& spec)
    : cache_(spec.l2_bytes, spec.l2_ways) {}

void MemoryModel::apply_request(TraceOp op, bool write,
                                const std::uint64_t* sectors,
                                std::uint64_t count) {
  switch (op) {
    case TraceOp::kWarp:
      ++counters_.warp_requests;
      counters_.sectors_requested += count;
      break;
    case TraceOp::kScalar:
      ++counters_.scalar_requests;
      counters_.scalar_sectors += count;
      break;
    case TraceOp::kAtomic:
      ++counters_.l2_atomic_ops;
      break;
  }
  if (op == TraceOp::kAtomic) {
    for (std::uint64_t i = 0; i < count; ++i) {
      // Atomics are read-modify-write at the L2: one read + one write request.
      if (reference_path_) {
        cache_.access_reference(sectors[i], /*write=*/false, counters_);
        cache_.access_reference(sectors[i], /*write=*/true, counters_);
      } else {
        cache_.access(sectors[i], /*write=*/false, counters_);
        cache_.access(sectors[i], /*write=*/true, counters_);
      }
    }
    return;
  }
  if (reference_path_) {
    for (std::uint64_t i = 0; i < count; ++i) {
      cache_.access_reference(sectors[i], write, counters_);
    }
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      cache_.access(sectors[i], write, counters_);
    }
  }
}

void MemoryModel::warp_access(const Lanes<std::uint64_t>& addr, unsigned size,
                              LaneMask mask, bool write) {
  if (mask == 0) {
    return;
  }
  if (reference_path_) {
    coalesce_warp_sectors_reference(addr, size, mask, scratch_);
  } else {
    coalesce_warp_sectors(addr, size, mask, scratch_);
  }
  apply_request(TraceOp::kWarp, write, scratch_.data, scratch_.count);
}

void MemoryModel::scalar_access(std::uint64_t addr, unsigned size, bool write) {
  const std::uint64_t first = addr / kSector;
  const std::uint64_t last = (addr + size - 1) / kSector;
  scratch_.reserve(static_cast<unsigned>(last - first + 1));
  for (std::uint64_t s = first; s <= last; ++s) {
    scratch_.data[scratch_.count++] = s;
  }
  apply_request(TraceOp::kScalar, write, scratch_.data, scratch_.count);
}

void MemoryModel::atomic_access(std::uint64_t addr, unsigned size) {
  const std::uint64_t first = addr / kSector;
  const std::uint64_t last = (addr + size - 1) / kSector;
  scratch_.reserve(static_cast<unsigned>(last - first + 1));
  for (std::uint64_t s = first; s <= last; ++s) {
    scratch_.data[scratch_.count++] = s;
  }
  apply_request(TraceOp::kAtomic, /*write=*/false, scratch_.data,
                scratch_.count);
}

void MemoryModel::replay(const BlockTrace& trace) {
  const std::vector<std::uint64_t>& words = trace.words();
  std::size_t i = 0;
  const std::size_t end = words.size();
  while (i < end) {
    const std::uint64_t header = words[i++];
    const auto op = static_cast<TraceOp>(header & kTraceOpMask);
    const bool write = (header >> kTraceWriteBit) & 1u;
    const std::uint64_t count = header >> kTraceCountShift;
    PD_ASSERT(i + count <= end);
    apply_request(op, write, words.data() + i, count);
    i += count;
  }
}

void MemoryModel::begin_kernel() { counters_ = TrafficCounters{}; }

TrafficCounters MemoryModel::end_kernel() {
  cache_.flush_dirty(counters_);
  return counters_;
}

}  // namespace pd::gpusim
