#include "gpusim/memory.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::gpusim {

namespace {
constexpr unsigned kSector = DeviceSpec::kSectorBytes;
}

double TrafficCounters::sectors_per_request() const {
  if (warp_requests == 0) {
    return 0.0;
  }
  return static_cast<double>(sectors_requested) /
         static_cast<double>(warp_requests);
}

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& o) {
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  l2_read_sectors += o.l2_read_sectors;
  l2_write_sectors += o.l2_write_sectors;
  l2_read_hits += o.l2_read_hits;
  l2_write_hits += o.l2_write_hits;
  l2_atomic_ops += o.l2_atomic_ops;
  warp_requests += o.warp_requests;
  sectors_requested += o.sectors_requested;
  return *this;
}

CacheModel::CacheModel(std::uint64_t capacity_bytes, unsigned ways)
    : capacity_bytes_(capacity_bytes), ways_(ways) {
  PD_CHECK_MSG(ways_ > 0, "CacheModel: need at least one way");
  PD_CHECK_MSG(capacity_bytes_ >= kSector * ways_, "CacheModel: capacity too small");
  sets_ = capacity_bytes_ / kSector / ways_;
  lines_.assign(sets_ * ways_, Way{});
}

bool CacheModel::access(std::uint64_t sector_index, bool write,
                        TrafficCounters& tc) {
  const std::size_t set = static_cast<std::size_t>(sector_index % sets_);
  Way* base = &lines_[set * ways_];
  ++tick_;

  if (write) {
    ++tc.l2_write_sectors;
  } else {
    ++tc.l2_read_sectors;
  }

  // Hit path.
  for (unsigned w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == sector_index) {
      way.stamp = tick_;
      way.dirty = way.dirty || write;
      if (write) {
        ++tc.l2_write_hits;
      } else {
        ++tc.l2_read_hits;
      }
      return true;
    }
  }

  // Miss: fill from DRAM (write-allocate).  Prefer an invalid way; otherwise
  // evict the least-recently-used one.
  unsigned victim = ways_;
  for (unsigned w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
  }
  if (victim == ways_) {
    victim = 0;
    for (unsigned w = 1; w < ways_; ++w) {
      if (base[w].stamp < base[victim].stamp) {
        victim = w;
      }
    }
  }
  Way& way = base[victim];
  if (way.valid && way.dirty) {
    tc.dram_write_bytes += kSector;
  }
  tc.dram_read_bytes += kSector;
  way.tag = sector_index;
  way.stamp = tick_;
  way.valid = true;
  way.dirty = write;
  return false;
}

void CacheModel::flush_dirty(TrafficCounters& tc) {
  for (Way& way : lines_) {
    if (way.valid && way.dirty) {
      tc.dram_write_bytes += kSector;
      way.dirty = false;
    }
  }
}

void CacheModel::invalidate() {
  std::fill(lines_.begin(), lines_.end(), Way{});
  tick_ = 0;
}

MemoryModel::MemoryModel(const DeviceSpec& spec)
    : cache_(spec.l2_bytes, spec.l2_ways) {}

void MemoryModel::warp_access(const Lanes<std::uint64_t>& addr, unsigned size,
                              LaneMask mask, bool write) {
  if (mask == 0) {
    return;
  }
  ++counters_.warp_requests;
  // Coalescer: collect the distinct sectors the active lanes touch.  A lane's
  // [addr, addr+size) range can straddle a sector boundary.
  std::array<std::uint64_t, 2 * kWarpSize> sectors{};
  unsigned n = 0;
  for (unsigned lane = 0; lane < kWarpSize; ++lane) {
    if (!lane_active(mask, lane)) {
      continue;
    }
    const std::uint64_t first = addr[lane] / kSector;
    const std::uint64_t last = (addr[lane] + size - 1) / kSector;
    for (std::uint64_t s = first; s <= last; ++s) {
      sectors[n++] = s;
    }
  }
  std::sort(sectors.begin(), sectors.begin() + n);
  const auto* unique_end = std::unique(sectors.begin(), sectors.begin() + n);
  for (const auto* it = sectors.begin(); it != unique_end; ++it) {
    ++counters_.sectors_requested;
    cache_.access(*it, write, counters_);
  }
}

void MemoryModel::scalar_access(std::uint64_t addr, unsigned size, bool write) {
  ++counters_.warp_requests;
  const std::uint64_t first = addr / kSector;
  const std::uint64_t last = (addr + size - 1) / kSector;
  for (std::uint64_t s = first; s <= last; ++s) {
    ++counters_.sectors_requested;
    cache_.access(s, write, counters_);
  }
}

void MemoryModel::atomic_access(std::uint64_t addr, unsigned size) {
  ++counters_.l2_atomic_ops;
  const std::uint64_t first = addr / kSector;
  const std::uint64_t last = (addr + size - 1) / kSector;
  for (std::uint64_t s = first; s <= last; ++s) {
    // Atomics are read-modify-write at the L2: one read + one write request.
    cache_.access(s, /*write=*/false, counters_);
    cache_.access(s, /*write=*/true, counters_);
  }
}

void MemoryModel::begin_kernel() { counters_ = TrafficCounters{}; }

TrafficCounters MemoryModel::end_kernel() {
  cache_.flush_dirty(counters_);
  return counters_;
}

}  // namespace pd::gpusim
