#include "gpusim/pool.hpp"

#include <algorithm>

namespace pd::gpusim {

unsigned resolve_phase1_threads(unsigned requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  }
  return std::max(requested, 1u);
}

ThreadPool::ThreadPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<pd::Mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::run_items() {
  batch_state_.read(0, 1);  // fn_/total_ published by parallel_for
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) {
      return;
    }
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<pd::Mutex> lock(mutex_);
      if (!error_) {
        error_ = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<pd::Mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) {
        return;
      }
      seen_generation = generation_;
    }
    run_items();
    {
      std::lock_guard<pd::Mutex> lock(mutex_);
      --pending_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<pd::Mutex> lock(mutex_);
    batch_state_.write(0, 1);
    fn_ = &fn;
    total_ = n;
    next_.store(0, std::memory_order_relaxed);
    pending_workers_ = threads_.size();
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_items();  // the caller participates
  std::exception_ptr error;
  {
    std::unique_lock<pd::Mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
    fn_ = nullptr;
    error = error_;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace pd::gpusim
