#pragma once
// Kernel launch engine.
//
// Gpu::run executes a warp-level kernel across a launch grid, block by block,
// warp by warp, with an optional *schedule seed* that permutes block
// execution order.  Real GPUs give no ordering guarantee between blocks;
// permuting the order lets tests demonstrate the paper's §II-D reproducibility
// argument concretely: kernels whose warps only touch disjoint outputs return
// bitwise-identical results under every schedule, while the atomic-based
// GPU Baseline does not.

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/block.hpp"
#include "gpusim/warp.hpp"

namespace pd::gpusim {

/// Launch geometry plus the per-thread register count the compiler would
/// report (feeds the occupancy calculator; measured per kernel variant).
struct LaunchConfig {
  unsigned threads_per_block = 512;
  std::uint64_t num_blocks = 0;
  unsigned regs_per_thread = 40;

  unsigned warps_per_block() const { return threads_per_block / kWarpSize; }
  std::uint64_t total_warps() const { return num_blocks * warps_per_block(); }

  /// Grid sized so that total threads = kWarpSize * work_items — the paper's
  /// "total number of threads is 32 times the number of rows".
  static LaunchConfig warp_per_item(std::uint64_t work_items,
                                    unsigned threads_per_block,
                                    unsigned regs_per_thread) {
    PD_CHECK_MSG(threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of the warp size");
    LaunchConfig cfg;
    cfg.threads_per_block = threads_per_block;
    cfg.regs_per_thread = regs_per_thread;
    const unsigned wpb = cfg.warps_per_block();
    cfg.num_blocks = (work_items + wpb - 1) / wpb;
    return cfg;
  }
};

/// Everything the launch measured: traffic, arithmetic, geometry.
struct KernelStats {
  TrafficCounters traffic;
  ComputeCounters compute;
  SharedCounters shared;
  std::uint64_t blocks_launched = 0;
  std::uint64_t warps_launched = 0;

  double flops() const { return static_cast<double>(compute.flops); }
  double dram_bytes() const { return static_cast<double>(traffic.dram_bytes()); }
  /// Measured operational intensity (FLOP per DRAM byte) — the x-axis of the
  /// paper's Figure 3 roofline.
  double operational_intensity() const {
    return traffic.dram_bytes() == 0 ? 0.0
                                     : flops() / dram_bytes();
  }
};

/// A simulated device: spec + memory hierarchy + launch loop.
class Gpu {
 public:
  explicit Gpu(DeviceSpec spec) : spec_(std::move(spec)), mem_(spec_) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Cold-start the cache so back-to-back measurements are independent.
  void invalidate_cache() { mem_.invalidate_cache(); }

  /// Execute `warp_fn(WarpCtx&)` for every warp of the grid.  Blocks run in
  /// ascending order when schedule_seed == 0, otherwise in a seeded random
  /// permutation (modeling the hardware's unordered block scheduling).
  ///
  /// The L2 is cold-started for each launch (`cold_cache`): the paper's
  /// matrices are hundreds of times larger than any L2 and self-evict every
  /// iteration, so a launch never benefits from the previous one's matrix
  /// lines; starting cold keeps the scaled-down measurements faithful to
  /// that streaming regime.
  template <typename Fn>
  KernelStats run(const LaunchConfig& cfg, Fn&& warp_fn,
                  std::uint64_t schedule_seed = 0, bool cold_cache = true) {
    if (cold_cache) {
      mem_.invalidate_cache();
    }
    PD_CHECK_MSG(cfg.threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of 32");
    PD_CHECK_MSG(cfg.threads_per_block <= spec_.max_threads_per_block,
                 "threads_per_block exceeds the device limit");
    PD_CHECK_MSG(cfg.num_blocks > 0, "empty grid");

    mem_.begin_kernel();
    ComputeCounters compute;

    std::vector<std::uint64_t> order(cfg.num_blocks);
    std::iota(order.begin(), order.end(), 0);
    if (schedule_seed != 0) {
      Rng rng(schedule_seed);
      rng.shuffle(order.data(), order.size());
    }

    const unsigned wpb = cfg.warps_per_block();
    for (const std::uint64_t block : order) {
      for (unsigned w = 0; w < wpb; ++w) {
        WarpCtx ctx(mem_, compute, block, w, cfg.threads_per_block,
                    cfg.num_blocks);
        warp_fn(ctx);
      }
    }

    KernelStats stats;
    stats.traffic = mem_.end_kernel();
    stats.compute = compute;
    stats.blocks_launched = cfg.num_blocks;
    stats.warps_launched = cfg.total_warps();
    return stats;
  }

  /// Execute a block-scope kernel: `block_fn(BlockCtx&)` runs once per
  /// block and coordinates its warps through shared memory and barrier
  /// phases (see gpusim/block.hpp).  Scheduling semantics match run().
  template <typename Fn>
  KernelStats run_blocks(const LaunchConfig& cfg, Fn&& block_fn,
                         std::uint64_t schedule_seed = 0,
                         bool cold_cache = true) {
    PD_CHECK_MSG(cfg.threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of 32");
    PD_CHECK_MSG(cfg.num_blocks > 0, "empty grid");
    if (cold_cache) {
      mem_.invalidate_cache();
    }
    mem_.begin_kernel();
    ComputeCounters compute;
    SharedCounters shared;

    std::vector<std::uint64_t> order(cfg.num_blocks);
    std::iota(order.begin(), order.end(), 0);
    if (schedule_seed != 0) {
      Rng rng(schedule_seed);
      rng.shuffle(order.data(), order.size());
    }
    for (const std::uint64_t block : order) {
      BlockCtx ctx(mem_, compute, shared, block, cfg.threads_per_block,
                   cfg.num_blocks, spec_.shared_bytes_per_block);
      block_fn(ctx);
    }

    KernelStats stats;
    stats.traffic = mem_.end_kernel();
    stats.compute = compute;
    stats.shared = shared;
    stats.blocks_launched = cfg.num_blocks;
    stats.warps_launched = cfg.total_warps();
    return stats;
  }

 private:
  DeviceSpec spec_;
  MemoryModel mem_;
};

}  // namespace pd::gpusim
