#pragma once
// Kernel launch engine.
//
// Gpu::run executes a warp-level kernel across a launch grid with an optional
// *schedule seed* that permutes block execution order.  Real GPUs give no
// ordering guarantee between blocks; permuting the order lets tests
// demonstrate the paper's §II-D reproducibility argument concretely: kernels
// whose warps only touch disjoint outputs return bitwise-identical results
// under every schedule, while the atomic-based GPU Baseline does not.
//
// Three engine modes (EngineOptions::mode, see gpusim/trace.hpp):
//
//  * kSerial — the legacy single pass: each warp executes and its memory
//    requests probe the cache inline, block by block in schedule order.
//  * kTraceReplay — two phases.  Phase 1 executes every block functionally
//    (in parallel across blocks when phase1_threads allows) and records each
//    warp's compacted sector trace into the block's private BlockTrace.
//    Phase 2 replays the traces through the cache model in schedule order.
//    Because intra-block request order is preserved by the trace and
//    inter-block order by the schedule-order replay, the traffic counters
//    are bitwise identical to kSerial for every schedule seed, regardless of
//    how phase 1 was parallelized.
//  * kFunctionalOnly — phase 1 only: real kernel results and arithmetic
//    counters, zero traffic simulation.  For callers that never look at the
//    memory counters (optimizer inner loops) this skips the coalescer, the
//    cache and even address generation.
//
// Determinism of the counters: per-block ComputeCounters / SharedCounters
// are summed in ascending block order (unsigned addition is associative and
// commutative, so the phase-1 execution order cannot leak in).  FP atomics
// under a concurrent phase 1 use real atomic RMW — race-free totals with
// nondeterministic addition order, exactly the §II-D behavior of hardware
// atomics (serial modes keep the schedule-order application the tests pin).

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/block.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/pool.hpp"
#include "gpusim/simcheck.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/warp.hpp"

namespace pd::gpusim {

/// Launch geometry plus the per-thread register count the compiler would
/// report (feeds the occupancy calculator; measured per kernel variant).
struct LaunchConfig {
  unsigned threads_per_block = 512;
  std::uint64_t num_blocks = 0;
  unsigned regs_per_thread = 40;

  unsigned warps_per_block() const { return threads_per_block / kWarpSize; }
  std::uint64_t total_warps() const { return num_blocks * warps_per_block(); }

  /// Grid sized so that total threads = kWarpSize * work_items — the paper's
  /// "total number of threads is 32 times the number of rows".
  static LaunchConfig warp_per_item(std::uint64_t work_items,
                                    unsigned threads_per_block,
                                    unsigned regs_per_thread) {
    PD_CHECK_MSG(threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of the warp size");
    LaunchConfig cfg;
    cfg.threads_per_block = threads_per_block;
    cfg.regs_per_thread = regs_per_thread;
    const unsigned wpb = cfg.warps_per_block();
    cfg.num_blocks = (work_items + wpb - 1) / wpb;
    return cfg;
  }
};

/// Everything the launch measured: traffic, arithmetic, geometry.
struct KernelStats {
  TrafficCounters traffic;
  ComputeCounters compute;
  SharedCounters shared;
  std::uint64_t blocks_launched = 0;
  std::uint64_t warps_launched = 0;

  double flops() const { return static_cast<double>(compute.flops); }
  double dram_bytes() const { return static_cast<double>(traffic.dram_bytes()); }
  /// Measured operational intensity (FLOP per DRAM byte) — the x-axis of the
  /// paper's Figure 3 roofline.
  double operational_intensity() const {
    return traffic.dram_bytes() == 0 ? 0.0
                                     : flops() / dram_bytes();
  }
};

/// How the engine executes launches.  phase1_threads only affects phase 1 of
/// kTraceReplay and kFunctionalOnly execution (0 = all hardware threads);
/// the traffic counters are identical for every value.
struct EngineOptions {
  TraceMode mode = TraceMode::kSerial;
  unsigned phase1_threads = 0;
};

/// A simulated device: spec + memory hierarchy + launch loop.
class Gpu {
 public:
  explicit Gpu(DeviceSpec spec) : spec_(std::move(spec)), mem_(spec_) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Cold-start the cache so back-to-back measurements are independent.
  void invalidate_cache() { mem_.invalidate_cache(); }

  /// Select the engine mode for subsequent launches.
  void set_engine(const EngineOptions& opts) {
    opts_ = opts;
    pool_.reset();  // rebuilt lazily for the new thread count
  }
  const EngineOptions& engine() const { return opts_; }

  /// Route the serial engine through the seed (reference) coalescer and cache
  /// scan — the differential-testing oracle and bench baseline.
  void set_reference_memory_path(bool on) { mem_.set_reference_path(on); }

  /// Enable the simcheck analyzer for subsequent launches (memcheck /
  /// racecheck / synccheck / initcheck / determinism-lint, narrowable via
  /// `cfg`).  Checked launches execute phase 1 serially — the shadow state
  /// is not thread-safe and serial order keeps findings deterministic —
  /// but every counter and kernel result stays bitwise identical.
  void enable_check(const CheckConfig& cfg = CheckConfig::all()) {
    check_ = std::make_unique<CheckContext>(cfg);
  }
  void disable_check() { check_.reset(); }

  /// The active analyzer, or nullptr when checking is disabled.  Kernel
  /// launchers use this to register their buffer tables.
  CheckContext* check() { return check_.get(); }
  bool check_enabled() const { return check_ != nullptr; }

  /// Findings accumulated across every checked launch since enable_check /
  /// the last clear.  Requires checking to be enabled.
  const CheckReport& check_report() const {
    PD_CHECK_MSG(check_ != nullptr,
                 "check_report: simcheck is not enabled on this Gpu");
    return check_->report();
  }

  /// Execute `warp_fn(WarpCtx&)` for every warp of the grid.  Blocks run in
  /// ascending order when schedule_seed == 0, otherwise in a seeded random
  /// permutation (modeling the hardware's unordered block scheduling).
  ///
  /// The L2 is cold-started for each launch (`cold_cache`): the paper's
  /// matrices are hundreds of times larger than any L2 and self-evict every
  /// iteration, so a launch never benefits from the previous one's matrix
  /// lines; starting cold keeps the scaled-down measurements faithful to
  /// that streaming regime.
  template <typename Fn>
  KernelStats run(const LaunchConfig& cfg, Fn&& warp_fn,
                  std::uint64_t schedule_seed = 0, bool cold_cache = true) {
    PD_CHECK_MSG(cfg.threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of 32");
    PD_CHECK_MSG(cfg.threads_per_block <= spec_.max_threads_per_block,
                 "threads_per_block exceeds the device limit");
    PD_CHECK_MSG(cfg.num_blocks > 0, "empty grid");

    const unsigned wpb = cfg.warps_per_block();
    auto run_block = [&](MemRoute route, ComputeCounters& compute,
                         std::uint64_t block) {
      for (unsigned w = 0; w < wpb; ++w) {
        WarpCtx ctx(route, compute, block, w, cfg.threads_per_block,
                    cfg.num_blocks);
        warp_fn(ctx);
      }
    };
    return launch(cfg, run_block, schedule_seed, cold_cache);
  }

  /// Execute a block-scope kernel: `block_fn(BlockCtx&)` runs once per
  /// block and coordinates its warps through shared memory and barrier
  /// phases (see gpusim/block.hpp).  Scheduling semantics match run().
  template <typename Fn>
  KernelStats run_blocks(const LaunchConfig& cfg, Fn&& block_fn,
                         std::uint64_t schedule_seed = 0,
                         bool cold_cache = true) {
    PD_CHECK_MSG(cfg.threads_per_block % kWarpSize == 0,
                 "threads_per_block must be a multiple of 32");
    PD_CHECK_MSG(cfg.num_blocks > 0, "empty grid");

    std::vector<SharedCounters> shared(cfg.num_blocks);
    auto run_block = [&](MemRoute route, ComputeCounters& compute,
                         std::uint64_t block) {
      BlockCtx ctx(route, compute, shared[block], block, cfg.threads_per_block,
                   cfg.num_blocks, spec_.shared_bytes_per_block);
      block_fn(ctx);
    };
    KernelStats stats = launch(cfg, run_block, schedule_seed, cold_cache);
    for (const SharedCounters& s : shared) {
      stats.shared += s;
    }
    return stats;
  }

 private:
  /// Blocks in launch order: ascending, or a seeded permutation.
  static std::vector<std::uint64_t> block_order(std::uint64_t num_blocks,
                                                std::uint64_t schedule_seed) {
    std::vector<std::uint64_t> order(num_blocks);
    std::iota(order.begin(), order.end(), 0);
    if (schedule_seed != 0) {
      Rng rng(schedule_seed);
      rng.shuffle(order.data(), order.size());
    }
    return order;
  }

  /// Phase-1 execution contexts for the current options (>= 1).
  unsigned phase1_contexts() const {
    return resolve_phase1_threads(opts_.phase1_threads);
  }

  ThreadPool& pool(unsigned contexts) {
    if (!pool_) {
      pool_ = std::make_unique<ThreadPool>(contexts - 1);
    }
    return *pool_;
  }

  /// Attach the active analyzer (if any) to a route before handing it to a
  /// block — the one place the check pointer enters the execution path.
  MemRoute routed(MemRoute route) {
    route.set_check(check_.get());
    return route;
  }

  /// Mode dispatch shared by run() and run_blocks().  `run_block` executes
  /// one block's warps against a MemRoute, accumulating into the given
  /// ComputeCounters.
  template <typename RunBlock>
  KernelStats launch(const LaunchConfig& cfg, RunBlock&& run_block,
                     std::uint64_t schedule_seed, bool cold_cache) {
    KernelStats stats;
    stats.blocks_launched = cfg.num_blocks;
    stats.warps_launched = cfg.total_warps();

    const std::vector<std::uint64_t> order =
        block_order(cfg.num_blocks, schedule_seed);

    if (check_) {
      check_->begin_launch(cfg.num_blocks, cfg.warps_per_block());
    }

    switch (opts_.mode) {
      case TraceMode::kSerial: {
        if (cold_cache) {
          mem_.invalidate_cache();
        }
        mem_.begin_kernel();
        ComputeCounters compute;
        for (const std::uint64_t block : order) {
          run_block(routed(MemRoute::direct(mem_)), compute, block);
        }
        stats.traffic = mem_.end_kernel();
        stats.compute = compute;
        break;
      }

      case TraceMode::kFunctionalOnly: {
        std::vector<ComputeCounters> compute(cfg.num_blocks);
        // Checked launches run serially: the shadow state is not
        // thread-safe, and serial schedule order keeps findings (and FP
        // atomic application) deterministic.  Counters are mode- and
        // parallelism-invariant, so nothing observable changes.
        const unsigned contexts = check_ ? 1 : phase1_contexts();
        if (contexts > 1 && cfg.num_blocks > 1) {
          MemRoute route = MemRoute::functional();
          route.set_concurrent(true);
          pool(contexts).parallel_for(
              cfg.num_blocks, [&](std::size_t block) {
                run_block(route, compute[block],
                          static_cast<std::uint64_t>(block));
              });
        } else {
          // Serial functional execution follows the schedule order so FP
          // atomics apply exactly as in the serial engine.
          for (const std::uint64_t block : order) {
            run_block(routed(MemRoute::functional()), compute[block], block);
          }
        }
        for (const ComputeCounters& c : compute) {
          stats.compute += c;
        }
        break;
      }

      case TraceMode::kTraceReplay: {
        // Phase 1: functional execution, recording per-block sector traces.
        std::vector<BlockTrace> traces(cfg.num_blocks);
        std::vector<ComputeCounters> compute(cfg.num_blocks);
        const unsigned contexts = check_ ? 1 : phase1_contexts();
        if (contexts > 1 && cfg.num_blocks > 1) {
          pool(contexts).parallel_for(
              cfg.num_blocks, [&](std::size_t block) {
                MemRoute route = MemRoute::record(traces[block]);
                route.set_concurrent(true);
                run_block(route, compute[block],
                          static_cast<std::uint64_t>(block));
              });
        } else {
          for (const std::uint64_t block : order) {
            run_block(routed(MemRoute::record(traces[block])), compute[block],
                      block);
          }
        }
        // Phase 2: replay through the cache in schedule order — the same
        // request sequence the serial engine would have issued.
        if (cold_cache) {
          mem_.invalidate_cache();
        }
        mem_.begin_kernel();
        for (const std::uint64_t block : order) {
          mem_.replay(traces[block]);
        }
        stats.traffic = mem_.end_kernel();
        for (const ComputeCounters& c : compute) {
          stats.compute += c;
        }
        break;
      }
    }

    if (check_) {
      check_->end_launch();
    }
    return stats;
  }

  DeviceSpec spec_;
  MemoryModel mem_;
  EngineOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CheckContext> check_;
};

}  // namespace pd::gpusim
