#pragma once
// Analytic performance model.
//
// SpMV is bandwidth-bound (paper §V), so the backbone of the model is
// t ≈ dram_bytes / achieved_bandwidth, with achieved bandwidth degraded by
// the effects the paper observes: occupancy of the launch configuration
// (Figure 4), grid size relative to the device (small prostate matrices),
// short rows limiting memory-level parallelism per warp, and — for the
// atomic GPU Baseline — L2 atomic throughput.  Compute-side terms (issue
// slots, peak FLOP rate) are included so the model degrades gracefully for
// non-memory-bound kernels.  Every measured quantity feeding the model comes
// from the cache simulator's counters for the kernel's real address stream.

#include <string>

#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"

namespace pd::gpusim {

enum class FlopPrecision { kFp32, kFp64 };

/// Workload descriptors the model needs beyond raw counters.
struct PerfInput {
  KernelStats stats;
  LaunchConfig config;
  FlopPrecision precision = FlopPrecision::kFp64;
  /// Mean useful work items (matrix non-zeros) per warp with non-empty work —
  /// drives the short-row memory-level-parallelism penalty.
  double mean_work_per_warp = 1e9;
};

/// Model output with the full term breakdown for inspection.
struct PerfEstimate {
  double seconds = 0.0;
  double gflops = 0.0;          ///< Achieved GFLOP/s.
  double dram_gbs = 0.0;        ///< Achieved DRAM bandwidth, GB/s.
  double operational_intensity = 0.0;
  double occupancy = 0.0;
  double bandwidth_fraction = 0.0;  ///< dram_gbs / peak.

  // Term breakdown (seconds); `seconds` = launch overhead + max of these.
  double t_dram = 0.0;
  double t_l2 = 0.0;
  double t_atomic = 0.0;
  double t_issue = 0.0;
  double t_flop = 0.0;
  double t_dispatch = 0.0;  ///< Block-scheduling time, additive.

  // Efficiency factors applied to peak DRAM bandwidth.
  double occupancy_factor = 0.0;
  double mlp_factor = 0.0;
  double wave_factor = 0.0;
};

/// Estimate runtime and achieved rates of one kernel launch on `spec`.
PerfEstimate estimate_performance(const DeviceSpec& spec, const PerfInput& in);

/// Host-CPU descriptor for the RayStation CPU baseline (Intel i9-7940X in the
/// paper).  cycles_per_nnz and scatter_bytes_per_nnz are calibrated constants
/// representing the custom-format decode cost and the cache-unfriendly
/// scatter into per-thread scratch dose arrays.
struct CpuSpec {
  std::string name = "i9-7940X";
  unsigned cores = 14;
  double clock_ghz = 3.1;
  double peak_bw_gbs = 85.0;
  double mem_efficiency = 0.60;
  double cycles_per_nnz = 6.0;
  double scatter_bytes_per_nnz = 12.0;
};

CpuSpec make_i9_7940x();

/// CPU workload summary for the scratch-array algorithm (see rsformat docs).
struct CpuWorkload {
  double nnz = 0.0;
  double rows = 0.0;            ///< Dose-grid size (scratch array length).
  double stream_bytes = 0.0;    ///< Sequential matrix traffic.
  double flops = 0.0;
};

struct CpuEstimate {
  double seconds = 0.0;
  double gflops = 0.0;
  double t_mem = 0.0;
  double t_core = 0.0;
};

CpuEstimate estimate_cpu_performance(const CpuSpec& spec, const CpuWorkload& w);

}  // namespace pd::gpusim
