#include "gpusim/simcheck.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace pd::gpusim {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kGlobalOutOfBounds:
      return "global-out-of-bounds";
    case ViolationKind::kSharedOutOfBounds:
      return "shared-out-of-bounds";
    case ViolationKind::kSharedRace:
      return "shared-race";
    case ViolationKind::kBarrierDivergence:
      return "barrier-divergence";
    case ViolationKind::kUninitRead:
      return "uninitialized-read";
    case ViolationKind::kNonDeterministicAtomic:
      return "non-deterministic-atomic";
  }
  return "unknown";
}

std::uint64_t CheckReport::count(ViolationKind kind) const {
  std::uint64_t n = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (clean()) {
    os << "simcheck: 0 violations across " << launches_checked
       << " checked launch(es)\n";
    return os.str();
  }
  os << "simcheck: " << violations.size() << " violation(s)";
  if (suppressed > 0) {
    os << " (+" << suppressed << " suppressed)";
  }
  os << " across " << launches_checked << " checked launch(es)\n";
  constexpr ViolationKind kKinds[] = {
      ViolationKind::kGlobalOutOfBounds,  ViolationKind::kSharedOutOfBounds,
      ViolationKind::kSharedRace,         ViolationKind::kBarrierDivergence,
      ViolationKind::kUninitRead,         ViolationKind::kNonDeterministicAtomic,
  };
  for (const ViolationKind k : kKinds) {
    const std::uint64_t n = count(k);
    if (n > 0) {
      os << "  " << violation_kind_name(k) << ": " << n << "\n";
    }
  }
  const std::size_t shown = std::min<std::size_t>(violations.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    const Violation& v = violations[i];
    os << "  [" << violation_kind_name(v.kind) << "] block " << v.block
       << " warp " << v.warp << " lane " << v.lane;
    if (!v.buffer.empty()) {
      os << " buffer '" << v.buffer << "'";
    }
    os << ": " << v.detail << "\n";
  }
  if (violations.size() > shown) {
    os << "  ... " << (violations.size() - shown) << " more\n";
  }
  return os.str();
}

void CheckContext::clear_tracking() { buffers_.clear(); }

void CheckContext::track_global(const void* ptr, std::size_t bytes,
                                std::string label, bool initialized) {
  if (ptr == nullptr || bytes == 0) {
    return;
  }
  TrackedBuffer buf;
  buf.begin = reinterpret_cast<std::uint64_t>(ptr);
  buf.end = buf.begin + bytes;
  buf.label = std::move(label);
  buf.initialized = initialized;
  if (!initialized) {
    buf.written.assign(bytes, false);
  }
  const auto pos = std::lower_bound(
      buffers_.begin(), buffers_.end(), buf.begin,
      [](const TrackedBuffer& b, std::uint64_t begin) { return b.begin < begin; });
  buffers_.insert(pos, std::move(buf));
}

void CheckContext::begin_launch(std::uint64_t num_blocks,
                                unsigned warps_per_block) {
  launch_total_warps_ = num_blocks * warps_per_block;
  fp_atomic_flagged_ = false;
  ++report_.launches_checked;
}

void CheckContext::end_launch() {
  // Arena heap addresses are recycled across launches; the per-block shadow
  // must not leak into the next launch.  Tracked global buffers and their
  // written-shadows persist (multi-launch kernels like rowsplit hand results
  // between launches through them).
  blocks_.clear();
}

void CheckContext::record(Violation v) {
  if (report_.violations.size() >= config_.max_violations) {
    ++report_.suppressed;
    return;
  }
  report_.violations.push_back(std::move(v));
}

CheckContext::TrackedBuffer* CheckContext::find_buffer(std::uint64_t address) {
  // buffers_ is sorted by begin; the candidate is the last begin <= address.
  auto it = std::upper_bound(
      buffers_.begin(), buffers_.end(), address,
      [](std::uint64_t addr, const TrackedBuffer& b) { return addr < b.begin; });
  if (it == buffers_.begin()) {
    return nullptr;
  }
  --it;
  return address < it->end ? &*it : nullptr;
}

void CheckContext::global_access(std::uint64_t address, unsigned size,
                                 bool write, std::uint64_t block, unsigned warp,
                                 unsigned lane) {
  if (buffers_.empty()) {
    return;  // nothing registered: no information to check against
  }
  TrackedBuffer* buf = find_buffer(address);
  if (buf == nullptr || address + size > buf->end) {
    if (config_.memcheck) {
      Violation v;
      v.kind = ViolationKind::kGlobalOutOfBounds;
      v.block = block;
      v.warp = warp;
      v.lane = lane;
      v.address = address;
      if (buf != nullptr) {
        v.buffer = buf->label;
        v.detail = std::to_string(size) + "-byte " +
                   (write ? std::string("write") : std::string("read")) +
                   " straddles the end of the buffer";
      } else {
        v.detail = std::to_string(size) + "-byte " +
                   (write ? std::string("write") : std::string("read")) +
                   " hits no tracked buffer";
      }
      record(std::move(v));
    }
    return;
  }
  if (buf->initialized) {
    return;
  }
  const std::size_t off = static_cast<std::size_t>(address - buf->begin);
  if (write) {
    for (unsigned b = 0; b < size; ++b) {
      buf->written[off + b] = true;
    }
    return;
  }
  if (!config_.initcheck) {
    return;
  }
  for (unsigned b = 0; b < size; ++b) {
    if (!buf->written[off + b]) {
      Violation v;
      v.kind = ViolationKind::kUninitRead;
      v.block = block;
      v.warp = warp;
      v.lane = lane;
      v.address = address;
      v.buffer = buf->label;
      v.detail = "read of output memory never written by the launch";
      record(std::move(v));
      return;  // one finding per lane access, not per byte
    }
  }
}

CheckContext::SharedArena* CheckContext::find_arena(BlockState& state,
                                                    std::uint64_t address) {
  for (SharedArena& arena : state.arenas) {
    if (address >= arena.begin && address < arena.end) {
      return &arena;
    }
  }
  return nullptr;
}

void CheckContext::shared_arena(std::uint64_t block, const void* base,
                                std::size_t bytes) {
  if (base == nullptr || bytes == 0) {
    return;
  }
  SharedArena arena;
  arena.begin = reinterpret_cast<std::uint64_t>(base);
  arena.end = arena.begin + bytes;
  arena.bytes.assign(bytes, ByteShadow{});
  blocks_[block].arenas.push_back(std::move(arena));
}

void CheckContext::shared_access(std::uint64_t address, unsigned size,
                                 bool write, std::uint64_t block, unsigned warp,
                                 unsigned lane) {
  auto it = blocks_.find(block);
  SharedArena* arena =
      it == blocks_.end() ? nullptr : find_arena(it->second, address);
  if (arena == nullptr || address + size > arena->end) {
    if (config_.memcheck) {
      Violation v;
      v.kind = ViolationKind::kSharedOutOfBounds;
      v.block = block;
      v.warp = warp;
      v.lane = lane;
      v.address = address;
      v.detail = std::to_string(size) + "-byte shared " +
                 (write ? std::string("write") : std::string("read")) +
                 " outside every arena of this block";
      record(std::move(v));
    }
    return;
  }
  BlockState& state = it->second;
  const std::uint32_t phase = state.phase;
  const std::uint32_t seg =
      warp < state.sync_counts.size() ? state.sync_counts[warp] : 0;
  const std::size_t off = static_cast<std::size_t>(address - arena->begin);
  bool race_reported = false;
  bool uninit_reported = false;
  for (unsigned b = 0; b < size; ++b) {
    ByteShadow& s = arena->bytes[off + b];
    if (s.phase != phase || s.seg != seg) {
      // A barrier separates the previous record from this access: ordered.
      s.phase = phase;
      s.seg = seg;
      s.writer = kNoWarp;
      s.reader = kNoWarp;
      s.multi_reader = false;
    }
    const auto w = static_cast<std::int32_t>(warp);
    if (write) {
      if (config_.racecheck && !race_reported) {
        const bool ww = s.writer != kNoWarp && s.writer != w;
        const bool rw = s.reader != kNoWarp && (s.reader != w || s.multi_reader);
        if (ww || rw) {
          Violation v;
          v.kind = ViolationKind::kSharedRace;
          v.block = block;
          v.warp = warp;
          v.lane = lane;
          v.address = address;
          v.detail = ww ? "write/write hazard with warp " +
                              std::to_string(s.writer) +
                              " in the same barrier epoch"
                        : "write after a read by another warp in the same "
                          "barrier epoch";
          record(std::move(v));
          race_reported = true;
        }
      }
      s.writer = w;
      s.written_ever = true;
    } else {
      if (config_.racecheck && !race_reported && s.writer != kNoWarp &&
          s.writer != w) {
        Violation v;
        v.kind = ViolationKind::kSharedRace;
        v.block = block;
        v.warp = warp;
        v.lane = lane;
        v.address = address;
        v.detail = "read/write hazard with warp " + std::to_string(s.writer) +
                   " in the same barrier epoch";
        record(std::move(v));
        race_reported = true;
      }
      if (config_.initcheck && !uninit_reported && !s.written_ever) {
        Violation v;
        v.kind = ViolationKind::kUninitRead;
        v.block = block;
        v.warp = warp;
        v.lane = lane;
        v.address = address;
        v.detail = "read of shared memory never written by this block";
        record(std::move(v));
        uninit_reported = true;
      }
      if (s.reader == kNoWarp) {
        s.reader = w;
      } else if (s.reader != w) {
        s.multi_reader = true;
      }
    }
  }
}

void CheckContext::fp_atomic(std::uint64_t address, std::uint64_t block,
                             unsigned warp) {
  if (!config_.determinism_lint || fp_atomic_flagged_) {
    return;
  }
  if (launch_total_warps_ <= 1) {
    return;  // a single warp applies its lanes in a fixed order
  }
  fp_atomic_flagged_ = true;
  Violation v;
  v.kind = ViolationKind::kNonDeterministicAtomic;
  v.block = block;
  v.warp = warp;
  v.address = address;
  TrackedBuffer* buf = find_buffer(address);
  if (buf != nullptr) {
    v.buffer = buf->label;
  }
  v.detail =
      "floating-point atomicAdd across " +
      std::to_string(launch_total_warps_) +
      " warps: accumulation order depends on the block schedule (breaks the "
      "paper's bitwise run-to-run reproducibility contract)";
  record(std::move(v));
}

void CheckContext::sync_mark(std::uint64_t block, unsigned warp,
                             LaneMask mask) {
  BlockState& state = blocks_[block];
  if (config_.synccheck && mask != kFullMask) {
    Violation v;
    v.kind = ViolationKind::kBarrierDivergence;
    v.block = block;
    v.warp = warp;
    v.detail = "sync() reached with a partial lane mask (" +
               std::to_string(popcount_mask(mask)) + "/32 lanes active)";
    record(std::move(v));
  }
  if (warp < state.sync_counts.size()) {
    ++state.sync_counts[warp];
  }
}

void CheckContext::phase_begin(std::uint64_t block, unsigned warps) {
  BlockState& state = blocks_[block];
  state.phase_open = true;
  state.sync_counts.assign(warps, 0);
}

void CheckContext::phase_end(std::uint64_t block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end() || !it->second.phase_open) {
    return;
  }
  BlockState& state = it->second;
  if (config_.synccheck && !state.sync_counts.empty()) {
    const std::uint32_t expected = state.sync_counts.front();
    for (std::size_t w = 1; w < state.sync_counts.size(); ++w) {
      if (state.sync_counts[w] != expected) {
        Violation v;
        v.kind = ViolationKind::kBarrierDivergence;
        v.block = block;
        v.warp = static_cast<unsigned>(w);
        v.detail = "warp reached " + std::to_string(state.sync_counts[w]) +
                   " barrier(s) this phase while warp 0 reached " +
                   std::to_string(expected);
        record(std::move(v));
      }
    }
  }
  state.phase_open = false;
  state.sync_counts.clear();
  ++state.phase;  // the implicit barrier between phases opens a new epoch
}

bool simcheck_env_enabled() {
  const char* v = std::getenv("PROTONDOSE_SIMCHECK");
  if (v == nullptr) {
    return false;
  }
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

}  // namespace pd::gpusim
