#pragma once
// WarpCtx — the programming surface kernels are written against.
//
// A kernel body is a callable `void(WarpCtx&)` invoked once per warp of the
// launch grid.  The context exposes the CUDA constructs the paper's Listing 1
// uses — per-lane loads/stores with real coalescing, cooperative-groups-style
// warp reductions with a fixed deterministic order, FP atomics — while
// threading every memory access through a MemRoute so the traffic counters
// correspond to what the kernel actually touched.
//
// The MemRoute decouples the kernel from the engine mode: in direct mode it
// feeds the MemoryModel inline (the legacy serial engine); in record mode it
// appends compacted sector traces for later replay; in functional-only mode
// it drops the traffic entirely — and WarpCtx then skips building the
// per-lane address vectors altogether, which is where most of the
// functional-only speedup comes from.
//
// All loads and stores operate on live host memory: the simulated kernels
// compute real results, which the test suite checks against references.

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "gpusim/lanes.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/simcheck.hpp"

namespace pd::gpusim {

/// Per-launch shared-memory counters (filled only by block-scope kernels).
struct SharedCounters {
  std::uint64_t accesses = 0;       ///< Warp-level shared ld/st instructions.
  std::uint64_t bank_conflicts = 0; ///< Extra serialized cycles from conflicts.

  SharedCounters& operator+=(const SharedCounters& o) {
    accesses += o.accesses;
    bank_conflicts += o.bank_conflicts;
    return *this;
  }
};

/// Arithmetic counters, accumulated per kernel launch.
struct ComputeCounters {
  std::uint64_t flops = 0;             ///< FP ops summed over *active* lanes.
  std::uint64_t warp_arith_instrs = 0; ///< Warp-level arithmetic instructions.
  std::uint64_t active_lane_ops = 0;   ///< Active lane-slots across instructions.
  std::uint64_t total_lane_ops = 0;    ///< 32 × warp instructions (SIMT denominator).

  /// SIMT lane utilization: 1.0 means no divergence / tail waste.
  double simt_efficiency() const {
    return total_lane_ops == 0
               ? 1.0
               : static_cast<double>(active_lane_ops) /
                     static_cast<double>(total_lane_ops);
  }

  ComputeCounters& operator+=(const ComputeCounters& o) {
    flops += o.flops;
    warp_arith_instrs += o.warp_arith_instrs;
    active_lane_ops += o.active_lane_ops;
    total_lane_ops += o.total_lane_ops;
    return *this;
  }
};

class WarpCtx {
 public:
  WarpCtx(MemRoute route, ComputeCounters& compute, std::uint64_t block_idx,
          unsigned warp_in_block, unsigned block_dim, std::uint64_t grid_dim)
      : route_(route),
        compute_(&compute),
        block_idx_(block_idx),
        warp_in_block_(warp_in_block),
        block_dim_(block_dim),
        grid_dim_(grid_dim) {}

  /// Legacy convenience: direct routing into a MemoryModel (serial engine,
  /// unit tests).
  WarpCtx(MemoryModel& mem, ComputeCounters& compute, std::uint64_t block_idx,
          unsigned warp_in_block, unsigned block_dim, std::uint64_t grid_dim)
      : WarpCtx(MemRoute::direct(mem), compute, block_idx, warp_in_block,
                block_dim, grid_dim) {}

  std::uint64_t block_idx() const { return block_idx_; }
  unsigned block_dim() const { return block_dim_; }
  std::uint64_t grid_dim() const { return grid_dim_; }
  unsigned warps_per_block() const { return block_dim_ / kWarpSize; }

  /// Linear warp id across the whole grid (the paper's `row` index).
  std::uint64_t global_warp_id() const {
    return block_idx_ * warps_per_block() + warp_in_block_;
  }

  /// Global id of this warp's lane 0 (threadIdx-based row assignment).
  std::uint64_t global_thread_base() const {
    return global_warp_id() * kWarpSize;
  }

  // --- Memory operations -------------------------------------------------

  /// Uniform load: one lane reads, value broadcast warp-wide (e.g. the
  /// row_ptr bounds in Listing 1).
  template <typename T>
  T load_uniform(const T* p) {
    if (CheckContext* chk = route_.check()) {
      chk->global_access(reinterpret_cast<std::uint64_t>(p), sizeof(T),
                         /*write=*/false, block_idx_, warp_in_block_, 0);
    }
    route_.scalar_access(reinterpret_cast<std::uint64_t>(p), sizeof(T),
                         /*write=*/false);
    note_instr(1);
    return *p;
  }

  /// Contiguous warp load: lane i reads base[start + i] for active lanes —
  /// the coalesced access pattern the vector-CSR kernel is built around.
  template <typename T>
  Lanes<T> load_contiguous(const T* base, std::uint64_t start, LaneMask mask) {
    if (CheckContext* chk = route_.check()) {
      check_contiguous(chk, base + start, sizeof(T), mask, /*write=*/false);
    }
    Lanes<T> out{};
    if (route_.functional_only()) {
      for (unsigned i = 0; i < kWarpSize; ++i) {
        if (lane_active(mask, i)) {
          out[i] = base[start + i];
        }
      }
      note_instr(popcount_mask(mask));
      return out;
    }
    Lanes<std::uint64_t> addr;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        addr[i] = reinterpret_cast<std::uint64_t>(base + start + i);
        out[i] = base[start + i];
      }
    }
    route_.warp_access(addr, sizeof(T), mask, /*write=*/false);
    note_instr(popcount_mask(mask));
    return out;
  }

  /// Indexed gather: lane i reads base[idx[i]] (the input-vector access).
  template <typename T, typename I>
  Lanes<T> gather(const T* base, const Lanes<I>& idx, LaneMask mask) {
    if (CheckContext* chk = route_.check()) {
      check_indexed(chk, base, idx, mask, /*write=*/false);
    }
    Lanes<T> out{};
    if (route_.functional_only()) {
      for (unsigned i = 0; i < kWarpSize; ++i) {
        if (lane_active(mask, i)) {
          out[i] = base[idx[i]];
        }
      }
      note_instr(popcount_mask(mask));
      return out;
    }
    Lanes<std::uint64_t> addr;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        addr[i] = reinterpret_cast<std::uint64_t>(base + idx[i]);
        out[i] = base[idx[i]];
      }
    }
    route_.warp_access(addr, sizeof(T), mask, /*write=*/false);
    note_instr(popcount_mask(mask));
    return out;
  }

  /// Single-lane store (lane 0 writes the per-row result).
  template <typename T>
  void store_uniform(T* p, T value) {
    if (CheckContext* chk = route_.check()) {
      chk->global_access(reinterpret_cast<std::uint64_t>(p), sizeof(T),
                         /*write=*/true, block_idx_, warp_in_block_, 0);
    }
    *p = value;
    route_.scalar_access(reinterpret_cast<std::uint64_t>(p), sizeof(T),
                         /*write=*/true);
    note_instr(1);
  }

  /// Contiguous warp store: lane i writes base[start + i].
  template <typename T>
  void store_contiguous(T* base, std::uint64_t start, const Lanes<T>& val,
                        LaneMask mask) {
    if (CheckContext* chk = route_.check()) {
      check_contiguous(chk, base + start, sizeof(T), mask, /*write=*/true);
    }
    if (route_.functional_only()) {
      for (unsigned i = 0; i < kWarpSize; ++i) {
        if (lane_active(mask, i)) {
          base[start + i] = val[i];
        }
      }
      note_instr(popcount_mask(mask));
      return;
    }
    Lanes<std::uint64_t> addr;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        addr[i] = reinterpret_cast<std::uint64_t>(base + start + i);
        base[start + i] = val[i];
      }
    }
    route_.warp_access(addr, sizeof(T), mask, /*write=*/true);
    note_instr(popcount_mask(mask));
  }

  /// Indexed scatter store: lane i writes base[idx[i]] = val[i].  Callers are
  /// responsible for index disjointness (racing plain stores would be UB on
  /// real hardware too).
  template <typename T, typename I>
  void scatter(T* base, const Lanes<I>& idx, const Lanes<T>& val, LaneMask mask) {
    if (CheckContext* chk = route_.check()) {
      check_indexed(chk, base, idx, mask, /*write=*/true);
    }
    if (route_.functional_only()) {
      for (unsigned i = 0; i < kWarpSize; ++i) {
        if (lane_active(mask, i)) {
          base[idx[i]] = val[i];
        }
      }
      note_instr(popcount_mask(mask));
      return;
    }
    Lanes<std::uint64_t> addr;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        addr[i] = reinterpret_cast<std::uint64_t>(base + idx[i]);
        base[idx[i]] = val[i];
      }
    }
    route_.warp_access(addr, sizeof(T), mask, /*write=*/true);
    note_instr(popcount_mask(mask));
  }

  /// Per-lane atomicAdd scatter: lane i does atomicAdd(&base[idx[i]], val[i]).
  /// Lanes apply in lane order within the warp; *across* warps the order is
  /// whatever block schedule the launch used — which is exactly why kernels
  /// built on this primitive are not bitwise reproducible (paper §II-D).
  /// When the engine runs blocks concurrently the addition uses a real atomic
  /// RMW, mirroring hardware: race-free totals, nondeterministic FP order.
  template <typename T, typename I>
  void atomic_add_scatter(T* base, const Lanes<I>& idx, const Lanes<T>& val,
                          LaneMask mask) {
    if (CheckContext* chk = route_.check()) {
      check_indexed(chk, base, idx, mask, /*write=*/true);
      if constexpr (std::is_floating_point_v<T>) {
        for (unsigned i = 0; i < kWarpSize; ++i) {
          if (lane_active(mask, i)) {
            chk->fp_atomic(reinterpret_cast<std::uint64_t>(base + idx[i]),
                           block_idx_, warp_in_block_);
            break;  // one mark per instruction; the lint dedups per launch
          }
        }
      }
    }
    if constexpr (std::is_arithmetic_v<T>) {
      if (route_.concurrent()) {
        for (unsigned i = 0; i < kWarpSize; ++i) {
          if (lane_active(mask, i)) {
            std::atomic_ref<T>(base[idx[i]])
                .fetch_add(val[i], std::memory_order_relaxed);
            route_.atomic_access(
                reinterpret_cast<std::uint64_t>(base + idx[i]), sizeof(T));
          }
        }
        note_instr(popcount_mask(mask));
        return;
      }
    }
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        base[idx[i]] += val[i];
        route_.atomic_access(reinterpret_cast<std::uint64_t>(base + idx[i]),
                             sizeof(T));
      }
    }
    note_instr(popcount_mask(mask));
  }

  // --- Shared memory (block-scope kernels only) ---------------------------

  /// Attach the block's shared-memory counters (done by BlockCtx).
  void attach_shared(SharedCounters* counters) { shared_ = counters; }

  /// Indexed load from block-shared storage.  On-chip: no L2/DRAM traffic,
  /// but lanes whose addresses fall in the same 4-byte-word bank serialize
  /// (32 banks, broadcast of identical words is free).
  template <typename T, typename I>
  Lanes<T> shared_gather(const T* base, const Lanes<I>& idx, LaneMask mask) {
    PD_CHECK_MSG(shared_ != nullptr,
                 "shared access outside a block-scope kernel");
    if (CheckContext* chk = route_.check()) {
      check_shared(chk, base, idx, mask, /*write=*/false);
    }
    Lanes<T> out{};
    count_bank_conflicts(base, idx, mask);
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        out[i] = base[idx[i]];
      }
    }
    note_instr(popcount_mask(mask));
    return out;
  }

  /// Indexed store to block-shared storage.
  template <typename T, typename I>
  void shared_scatter(T* base, const Lanes<I>& idx, const Lanes<T>& val,
                      LaneMask mask) {
    PD_CHECK_MSG(shared_ != nullptr,
                 "shared access outside a block-scope kernel");
    if (CheckContext* chk = route_.check()) {
      check_shared(chk, base, idx, mask, /*write=*/true);
    }
    count_bank_conflicts(base, idx, mask);
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        base[idx[i]] = val[i];
      }
    }
    note_instr(popcount_mask(mask));
  }

  /// Barrier-participation mark for __syncthreads().  Free when checking is
  /// disabled (the simulator's for_each_warp phases already provide the
  /// execution barrier); under synccheck a partial `mask` is divergent by
  /// definition, and per-warp sync counts must match within each phase.
  void sync(LaneMask mask = kFullMask) {
    if (CheckContext* chk = route_.check()) {
      chk->sync_mark(block_idx_, warp_in_block_, mask);
    }
  }

  // --- Arithmetic accounting ---------------------------------------------

  /// Record non-FP work (integer prefix sums, shuffles, predicate math):
  /// consumes issue slots and SIMT lanes but does NOT count toward the FLOP
  /// total that normalizes GFLOP/s — the paper counts 2·nnz useful FLOPs.
  void count_instrs(unsigned instrs_per_lane, LaneMask mask) {
    const unsigned active = popcount_mask(mask);
    compute_->warp_arith_instrs += instrs_per_lane;
    compute_->active_lane_ops +=
        static_cast<std::uint64_t>(instrs_per_lane) * active;
    compute_->total_lane_ops +=
        static_cast<std::uint64_t>(instrs_per_lane) * kWarpSize;
  }

  /// Record `flops_per_lane` FP operations executed by each active lane in
  /// one warp instruction (e.g. 2 for a fused multiply-add).
  void count_flops(unsigned flops_per_lane, LaneMask mask) {
    const unsigned active = popcount_mask(mask);
    compute_->flops += static_cast<std::uint64_t>(flops_per_lane) * active;
    compute_->warp_arith_instrs += flops_per_lane;
    compute_->active_lane_ops +=
        static_cast<std::uint64_t>(flops_per_lane) * active;
    compute_->total_lane_ops +=
        static_cast<std::uint64_t>(flops_per_lane) * kWarpSize;
  }

  /// Deterministic warp reduction (cooperative_groups::reduce, plus<>).
  /// The 5-step shfl butterfly is counted as arithmetic work.
  template <typename T>
  T reduce_add(const Lanes<T>& x, LaneMask mask = kFullMask) {
    compute_->warp_arith_instrs += 5;
    compute_->active_lane_ops += 5ull * kWarpSize;
    compute_->total_lane_ops += 5ull * kWarpSize;
    return warp_reduce_add(x, mask);
  }

 private:
  // --- simcheck hook helpers: per-lane address reporting ------------------
  template <typename T>
  void check_contiguous(CheckContext* chk, const T* first, unsigned size,
                        LaneMask mask, bool write) {
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        chk->global_access(reinterpret_cast<std::uint64_t>(first + i), size,
                           write, block_idx_, warp_in_block_, i);
      }
    }
  }

  template <typename T, typename I>
  void check_indexed(CheckContext* chk, const T* base, const Lanes<I>& idx,
                     LaneMask mask, bool write) {
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        chk->global_access(reinterpret_cast<std::uint64_t>(base + idx[i]),
                           sizeof(T), write, block_idx_, warp_in_block_, i);
      }
    }
  }

  template <typename T, typename I>
  void check_shared(CheckContext* chk, const T* base, const Lanes<I>& idx,
                    LaneMask mask, bool write) {
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        chk->shared_access(reinterpret_cast<std::uint64_t>(base + idx[i]),
                           sizeof(T), write, block_idx_, warp_in_block_, i);
      }
    }
  }

  template <typename T, typename I>
  void count_bank_conflicts(const T* base, const Lanes<I>& idx, LaneMask mask) {
    ++shared_->accesses;
    // 32 banks of 4-byte words; lanes touching different words in the same
    // bank serialize, identical words broadcast for free.
    std::array<std::uint64_t, kWarpSize> words{};
    unsigned n = 0;
    for (unsigned i = 0; i < kWarpSize; ++i) {
      if (lane_active(mask, i)) {
        words[n++] =
            reinterpret_cast<std::uint64_t>(base + idx[i]) / 4;
      }
    }
    for (unsigned bank = 0; bank < kWarpSize; ++bank) {
      std::uint64_t distinct = 0;
      std::array<std::uint64_t, kWarpSize> seen{};
      for (unsigned i = 0; i < n; ++i) {
        if (words[i] % kWarpSize != bank) {
          continue;
        }
        bool duplicate = false;
        for (std::uint64_t j = 0; j < distinct; ++j) {
          if (seen[j] == words[i]) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          seen[distinct++] = words[i];
        }
      }
      if (distinct > 1) {
        shared_->bank_conflicts += distinct - 1;
      }
    }
  }

  void note_instr(unsigned active_lanes) {
    ++compute_->warp_arith_instrs;  // address generation / ld-st issue slot
    compute_->active_lane_ops += active_lanes;
    compute_->total_lane_ops += kWarpSize;
  }

  MemRoute route_;
  ComputeCounters* compute_;
  SharedCounters* shared_ = nullptr;
  std::uint64_t block_idx_;
  unsigned warp_in_block_;
  unsigned block_dim_;
  std::uint64_t grid_dim_;
};

}  // namespace pd::gpusim
