#pragma once
// Minimal caller-participating thread pool for phase 1 of trace-replay
// execution.
//
// The pool owns `workers` threads; parallel_for additionally runs work on the
// calling thread, so a pool built with resolve_phase1_workers(n) saturates n
// cores with n-1 worker threads and degrades to plain serial execution (zero
// threads, zero synchronization overhead per item beyond one atomic) on a
// single-core host.  Work items are claimed from an atomic counter, so the
// schedule is dynamic; the engine's determinism never depends on which thread
// runs which block (see trace.hpp).

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/threadcheck.hpp"

namespace pd::gpusim {

/// Number of phase-1 execution contexts for a requested thread count.
/// 0 = auto (all hardware threads); anything else is clamped to >= 1.
unsigned resolve_phase1_threads(unsigned requested);

class ThreadPool {
 public:
  /// Spawn `workers` worker threads (0 is valid: parallel_for runs inline).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Run fn(i) for i in [0, n), distributing items across the workers and the
  /// calling thread.  Blocks until all items finish.  The first exception
  /// thrown by any item is rethrown here after the batch drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_items();

  std::vector<std::thread> threads_;
  // Instrumented primitives (common/threadcheck.hpp).  start_cv_ declares
  // Waiters::kOptional: zero-worker pools (the single-core degradation
  // path) notify it at teardown with no worker ever having waited.
  pd::Mutex mutex_{"ThreadPool.mutex"};
  pd::CondVar start_cv_{"ThreadPool.start_cv",
                        pd::CondVar::Waiters::kOptional};
  pd::CondVar done_cv_{"ThreadPool.done_cv"};
  /// threadcheck registration for the batch descriptor (fn_/total_):
  /// parallel_for records the write under the lock, run_items records the
  /// read — the race pass then proves the generation handshake orders them.
  pd::SharedRange batch_state_{"ThreadPool.batch"};
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t pending_workers_ = 0;  ///< Workers still inside the batch.
  std::uint64_t generation_ = 0;     ///< Bumped per batch to wake workers.
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace pd::gpusim
