#pragma once
// Memory-hierarchy simulator: a set-associative, write-back, write-allocate
// L2 sector cache over the kernels' real address streams.
//
// The paper derives its roofline and bandwidth results from Nsight Compute's
// dram_bytes counters (L2 <-> DRAM traffic).  This model reproduces those
// counters: every warp-level load/store is decomposed into 32-byte sectors
// (the granularity of NVIDIA's L2), deduplicated per request (the coalescer),
// probed against an LRU cache of the device's L2 capacity, and misses /
// dirty-line writebacks are accounted as DRAM traffic.  Cache *filtering*
// effects the paper discusses — the input vector staying resident in the
// 40 MB A100 L2, atomic write amplification staying intra-cache — fall out of
// the model rather than being assumed.
//
// Two implementations of the hot path coexist:
//  * the optimized path — an in-order insertion-dedup coalescer with a
//    monotone fast path, per-set LRU ticks and an MRU-way front check — and
//  * the reference path — the original sort+unique coalescer and global-tick
//    full-scan cache, kept as the behavioral oracle for differential tests
//    and as the baseline the engine-throughput bench measures against.
// Both produce the identical ascending distinct-sector stream per request,
// so every counter is bitwise equal between the paths.

#include <array>
#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/lanes.hpp"
#include "gpusim/trace.hpp"

namespace pd::gpusim {

class CheckContext;  // gpusim/simcheck.hpp — optional correctness analyzer

/// Traffic counters in the spirit of Nsight Compute's memory tables.
struct TrafficCounters {
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t l2_read_sectors = 0;   ///< Sector reads requested of L2.
  std::uint64_t l2_write_sectors = 0;  ///< Sector writes requested of L2.
  std::uint64_t l2_read_hits = 0;
  std::uint64_t l2_write_hits = 0;
  std::uint64_t l2_atomic_ops = 0;     ///< FP atomic RMW ops serviced by L2.
  std::uint64_t warp_requests = 0;     ///< Warp-level vector memory instructions.
  std::uint64_t sectors_requested = 0; ///< Sectors of warp requests, coalesced.
  std::uint64_t scalar_requests = 0;   ///< Uniform (broadcast) instructions.
  std::uint64_t scalar_sectors = 0;    ///< Sectors of scalar requests.

  std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  std::uint64_t l2_bytes() const {
    return (l2_read_sectors + l2_write_sectors) * DeviceSpec::kSectorBytes;
  }
  /// All issue-slot sectors (vector + scalar) — the replay term of t_issue.
  std::uint64_t total_sectors() const {
    return sectors_requested + scalar_sectors;
  }
  /// Sectors per warp *vector* request; 4.0 == perfectly coalesced 4-byte
  /// lanes.  Scalar requests are excluded so mixed traffic does not skew the
  /// coalescing metric toward 1.
  double sectors_per_request() const;

  TrafficCounters& operator+=(const TrafficCounters& o);
};

/// Scratch buffer the coalescer compacts a request's distinct sectors into.
/// The inline array covers every access the kernels issue today (<= 64-byte
/// lanes); wider accesses spill to the heap instead of overflowing.
struct SectorBuffer {
  static constexpr unsigned kInlineCapacity = 4 * kWarpSize;
  std::array<std::uint64_t, kInlineCapacity> inline_storage;
  std::vector<std::uint64_t> spill;
  std::uint64_t* data = nullptr;
  unsigned count = 0;

  /// Point `data` at storage able to hold `needed` sectors.
  void reserve(unsigned needed) {
    if (needed <= kInlineCapacity) {
      data = inline_storage.data();
    } else {
      spill.resize(needed);
      data = spill.data();
    }
    count = 0;
  }
};

/// Compact the distinct sectors touched by one warp request into `out`, in
/// ascending order.  Insertion-dedup with a monotone fast path: the kernels'
/// lanes touch monotone (contiguous loads, ascending-column gathers) or
/// near-monotone addresses, so the common case is one compare per sector and
/// no sort; only a non-monotone stream pays a final small sort.
void coalesce_warp_sectors(const Lanes<std::uint64_t>& addr, unsigned size,
                           LaneMask mask, SectorBuffer& out);

/// The seed implementation (collect all, std::sort, std::unique), kept as
/// the oracle: identical output, original cost profile.
void coalesce_warp_sectors_reference(const Lanes<std::uint64_t>& addr,
                                     unsigned size, LaneMask mask,
                                     SectorBuffer& out);

/// Set-associative LRU sector cache with write-back / write-allocate policy.
class CacheModel {
 public:
  CacheModel(std::uint64_t capacity_bytes, unsigned ways);

  /// Probe one sector; updates counters.  `write` marks the line dirty.
  /// Returns true on hit.  Optimized path: MRU-way front check before the
  /// associativity scan, per-set LRU tick (same relative recency order
  /// within a set as a global tick, hence identical victims).
  bool access(std::uint64_t sector_index, bool write, TrafficCounters& tc);

  /// The seed implementation: full associativity scan, global LRU tick.
  /// Counter-equivalent to access(); do not interleave the two within one
  /// kernel launch (their recency stamps are tracked separately).
  bool access_reference(std::uint64_t sector_index, bool write,
                        TrafficCounters& tc);

  /// Write back all dirty lines (end-of-kernel accounting) without
  /// invalidating clean contents.
  void flush_dirty(TrafficCounters& tc);

  /// Drop all contents (cold cache for an independent measurement).
  void invalidate();

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };
  bool hit_way(Way& way, bool write, TrafficCounters& tc, std::uint64_t stamp);
  bool fill_way(Way* base, std::uint64_t sector_index, bool write,
                TrafficCounters& tc, std::uint64_t stamp, unsigned* way_out);

  std::uint64_t capacity_bytes_;
  unsigned ways_;
  std::size_t sets_;
  std::vector<Way> lines_;  ///< sets_ * ways_, row-major by set.
  std::vector<std::uint64_t> set_tick_;  ///< Per-set recency clock (optimized).
  std::vector<std::uint16_t> mru_way_;   ///< Most-recently-hit way per set.
  std::uint64_t tick_ = 0;               ///< Global clock (reference path).
};

/// Per-device memory model: routes warp requests through the coalescer and
/// the L2 model, accumulating counters for the active kernel.
class MemoryModel {
 public:
  explicit MemoryModel(const DeviceSpec& spec);

  /// One warp-level memory instruction touching per-lane byte ranges
  /// [addr[i], addr[i]+size) for active lanes.  Sectors are deduplicated
  /// across the warp (the coalescer) before probing L2.
  void warp_access(const Lanes<std::uint64_t>& addr, unsigned size, LaneMask mask,
                   bool write);

  /// Uniform (single-lane / broadcast) access.
  void scalar_access(std::uint64_t addr, unsigned size, bool write);

  /// Atomic read-modify-write of one `size`-byte word, serviced at L2.
  void atomic_access(std::uint64_t addr, unsigned size);

  /// Stream a phase-1 block trace through the cache, reproducing exactly the
  /// counter updates the direct path would have made.
  void replay(const BlockTrace& trace);

  /// Route subsequent accesses through the seed (reference) coalescer and
  /// cache scan instead of the optimized ones.  Counters are identical
  /// either way; this exists for differential tests and baseline timing.
  void set_reference_path(bool on) { reference_path_ = on; }
  bool reference_path() const { return reference_path_; }

  void begin_kernel();                       ///< Zero the per-kernel counters.
  TrafficCounters end_kernel();              ///< Flush dirty lines, return counters.
  void invalidate_cache() { cache_.invalidate(); }

  const TrafficCounters& counters() const { return counters_; }

 private:
  /// Shared application of one request's sector list — the single place the
  /// per-op counter protocol lives, used by both the direct path and
  /// replay() so the two are equivalent by construction.
  void apply_request(TraceOp op, bool write, const std::uint64_t* sectors,
                     std::uint64_t count);

  CacheModel cache_;
  TrafficCounters counters_;
  SectorBuffer scratch_;
  bool reference_path_ = false;
};

/// Dispatch handle a WarpCtx issues memory instructions through.  The engine
/// wires it to the mode of the launch: direct (serial single-pass), record
/// (phase 1 of trace-replay, appending to the block's trace), or functional
/// (no traffic simulation at all).
class MemRoute {
 public:
  static MemRoute direct(MemoryModel& mem) {
    MemRoute r;
    r.mode_ = TraceMode::kSerial;
    r.mem_ = &mem;
    return r;
  }
  static MemRoute record(BlockTrace& trace) {
    MemRoute r;
    r.mode_ = TraceMode::kTraceReplay;
    r.trace_ = &trace;
    return r;
  }
  static MemRoute functional() {
    MemRoute r;
    r.mode_ = TraceMode::kFunctionalOnly;
    return r;
  }

  /// True when the launch skips traffic simulation — WarpCtx uses this to
  /// elide address generation on its vector ops.
  bool functional_only() const { return mode_ == TraceMode::kFunctionalOnly; }

  /// True when phase 1 runs blocks concurrently: atomic_add_scatter must use
  /// real atomic RMW instead of a plain read-modify-write.
  bool concurrent() const { return concurrent_; }
  void set_concurrent(bool on) { concurrent_ = on; }

  /// The launch's simcheck context, or nullptr when checking is disabled.
  /// WarpCtx/BlockCtx hooks are guarded on this pointer, so the disabled
  /// path costs one null test per instruction and nothing else.
  CheckContext* check() const { return check_; }
  void set_check(CheckContext* check) { check_ = check; }

  void warp_access(const Lanes<std::uint64_t>& addr, unsigned size,
                   LaneMask mask, bool write);
  void scalar_access(std::uint64_t addr, unsigned size, bool write);
  void atomic_access(std::uint64_t addr, unsigned size);

 private:
  TraceMode mode_ = TraceMode::kSerial;
  MemoryModel* mem_ = nullptr;
  BlockTrace* trace_ = nullptr;
  bool concurrent_ = false;
  CheckContext* check_ = nullptr;
};

}  // namespace pd::gpusim
