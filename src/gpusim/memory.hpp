#pragma once
// Memory-hierarchy simulator: a set-associative, write-back, write-allocate
// L2 sector cache over the kernels' real address streams.
//
// The paper derives its roofline and bandwidth results from Nsight Compute's
// dram_bytes counters (L2 <-> DRAM traffic).  This model reproduces those
// counters: every warp-level load/store is decomposed into 32-byte sectors
// (the granularity of NVIDIA's L2), deduplicated per request (the coalescer),
// probed against an LRU cache of the device's L2 capacity, and misses /
// dirty-line writebacks are accounted as DRAM traffic.  Cache *filtering*
// effects the paper discusses — the input vector staying resident in the
// 40 MB A100 L2, atomic write amplification staying intra-cache — fall out of
// the model rather than being assumed.

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/lanes.hpp"

namespace pd::gpusim {

/// Traffic counters in the spirit of Nsight Compute's memory tables.
struct TrafficCounters {
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t l2_read_sectors = 0;   ///< Sector reads requested of L2.
  std::uint64_t l2_write_sectors = 0;  ///< Sector writes requested of L2.
  std::uint64_t l2_read_hits = 0;
  std::uint64_t l2_write_hits = 0;
  std::uint64_t l2_atomic_ops = 0;     ///< FP atomic RMW ops serviced by L2.
  std::uint64_t warp_requests = 0;     ///< Warp-level memory instructions.
  std::uint64_t sectors_requested = 0; ///< Sectors after coalescing.

  std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  std::uint64_t l2_bytes() const {
    return (l2_read_sectors + l2_write_sectors) * DeviceSpec::kSectorBytes;
  }
  /// Sectors per warp request; 1.0 == perfectly coalesced scalar loads.
  double sectors_per_request() const;

  TrafficCounters& operator+=(const TrafficCounters& o);
};

/// Set-associative LRU sector cache with write-back / write-allocate policy.
class CacheModel {
 public:
  CacheModel(std::uint64_t capacity_bytes, unsigned ways);

  /// Probe one sector; updates counters.  `write` marks the line dirty.
  /// Returns true on hit.
  bool access(std::uint64_t sector_index, bool write, TrafficCounters& tc);

  /// Write back all dirty lines (end-of-kernel accounting) without
  /// invalidating clean contents.
  void flush_dirty(TrafficCounters& tc);

  /// Drop all contents (cold cache for an independent measurement).
  void invalidate();

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };
  std::uint64_t capacity_bytes_;
  unsigned ways_;
  std::size_t sets_;
  std::vector<Way> lines_;  ///< sets_ * ways_, row-major by set.
  std::uint64_t tick_ = 0;
};

/// Per-device memory model: routes warp requests through the coalescer and
/// the L2 model, accumulating counters for the active kernel.
class MemoryModel {
 public:
  explicit MemoryModel(const DeviceSpec& spec);

  /// One warp-level memory instruction touching per-lane byte ranges
  /// [addr[i], addr[i]+size) for active lanes.  Sectors are deduplicated
  /// across the warp (the coalescer) before probing L2.
  void warp_access(const Lanes<std::uint64_t>& addr, unsigned size, LaneMask mask,
                   bool write);

  /// Uniform (single-lane / broadcast) access.
  void scalar_access(std::uint64_t addr, unsigned size, bool write);

  /// Atomic read-modify-write of one `size`-byte word, serviced at L2.
  void atomic_access(std::uint64_t addr, unsigned size);

  void begin_kernel();                       ///< Zero the per-kernel counters.
  TrafficCounters end_kernel();              ///< Flush dirty lines, return counters.
  void invalidate_cache() { cache_.invalidate(); }

  const TrafficCounters& counters() const { return counters_; }

 private:
  CacheModel cache_;
  TrafficCounters counters_;
};

}  // namespace pd::gpusim
