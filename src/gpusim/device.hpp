#pragma once
// GPU device descriptors and the occupancy calculator.
//
// DeviceSpec captures the published characteristics of the three GPUs the
// paper evaluates (A100, V100, P100) plus the host CPU used for the
// RayStation baseline.  Where the paper's measurements expose empirical
// constants that a datasheet does not give (achieved fraction of peak DRAM
// bandwidth, atomic throughput), the values are *calibrated* against the
// paper's own reported numbers and documented as such — see DESIGN.md §2.

#include <cstdint>
#include <string>

namespace pd::gpusim {

struct DeviceSpec {
  std::string name;

  // Datasheet values.
  double peak_bw_gbs = 0.0;         ///< Peak DRAM bandwidth, GB/s.
  double peak_fp64_gflops = 0.0;    ///< Peak FP64 throughput, GFLOP/s.
  double peak_fp32_gflops = 0.0;    ///< Peak FP32 throughput, GFLOP/s.
  std::uint64_t l2_bytes = 0;       ///< L2 cache capacity.
  double l2_bw_gbs = 0.0;           ///< Aggregate L2 bandwidth, GB/s.
  unsigned num_sms = 0;
  double sm_clock_ghz = 0.0;
  unsigned warp_schedulers_per_sm = 4;

  // Occupancy limits (CUDA occupancy-calculator inputs).
  unsigned max_threads_per_sm = 2048;
  unsigned max_blocks_per_sm = 32;
  unsigned max_threads_per_block = 1024;
  std::uint32_t regs_per_sm = 65536;

  // Calibrated model constants (documented in DESIGN.md / EXPERIMENTS.md).
  double mem_efficiency = 0.88;     ///< Achieved/peak DRAM BW at saturation.
  double atomic_gops = 20.0;        ///< Aggregate FP64 L2 atomicAdd rate, Gop/s.
  double launch_overhead_s = 4e-6;  ///< Fixed kernel-launch latency.
  double block_dispatch_gblocks = 10.0;  ///< Block scheduling rate, Gblocks/s.
  double mlp_row_scale = 75.0;      ///< Short-row latency penalty scale (r0).

  /// Cache geometry: NVIDIA L2 services 32-byte sectors.
  static constexpr unsigned kSectorBytes = 32;
  unsigned l2_ways = 16;

  /// Static shared-memory limit per block.
  std::size_t shared_bytes_per_block = 48 * 1024;
};

/// Nvidia A100-SXM4-40GB (Ampere), as used in the paper's primary system.
DeviceSpec make_a100();
/// Nvidia V100-SXM2-16GB (Volta), the Kebnekaise nodes.
DeviceSpec make_v100();
/// Nvidia P100-SXM2-16GB (Pascal) on the POWER8 host.
DeviceSpec make_p100();

/// Nvidia H100-SXM5-80GB (Hopper) — NOT in the paper; included so the model
/// can *predict* the kernel's performance on the following generation
/// (reported as a forward prediction in fig7_gpu_generations).
DeviceSpec make_h100();

/// Occupancy-calculator result for a launch configuration.
struct Occupancy {
  unsigned blocks_per_sm = 0;
  unsigned active_threads_per_sm = 0;
  double fraction = 0.0;  ///< active threads / max threads per SM.
  enum class Limiter { kThreads, kBlocks, kRegisters, kInvalid } limiter =
      Limiter::kInvalid;
};

/// CUDA occupancy calculation: how many blocks of `threads_per_block`
/// threads, each thread using `regs_per_thread` registers, fit on one SM.
/// Register allocation granularity is simplified to per-thread-exact, which
/// matches the calculator closely for the configurations swept in Figure 4.
Occupancy compute_occupancy(const DeviceSpec& spec, unsigned threads_per_block,
                            unsigned regs_per_thread);

const char* to_string(Occupancy::Limiter limiter);

}  // namespace pd::gpusim
