#pragma once
// Warp-level SPMD primitives.
//
// The simulator executes CUDA-style kernels *warp-synchronously*: a kernel
// body is written once per warp and operates on Lanes<T> — a register file
// holding one value per lane, the software analogue of a warp's view of a
// register.  Divergence is expressed with explicit LaneMasks, exactly the
// model CUDA cooperative groups expose (tiled_partition<32>, labeled
// participation masks).  This keeps lane-level memory access patterns — the
// thing the paper's analysis hinges on — bit-identical to the CUDA source.

#include <array>
#include <cstdint>

#include "common/error.hpp"

namespace pd::gpusim {

inline constexpr unsigned kWarpSize = 32;

/// Participation mask, one bit per lane (bit i = lane i active).
using LaneMask = std::uint32_t;
inline constexpr LaneMask kFullMask = 0xffffffffu;

constexpr bool lane_active(LaneMask m, unsigned lane) {
  return (m >> lane) & 1u;
}

constexpr unsigned popcount_mask(LaneMask m) {
  return static_cast<unsigned>(__builtin_popcount(m));
}

/// Mask with the first n lanes active.
constexpr LaneMask first_lanes(unsigned n) {
  PD_ASSERT(n <= kWarpSize);
  return n >= kWarpSize ? kFullMask : ((LaneMask{1} << n) - 1u);
}

/// One register across all 32 lanes of a warp.
template <typename T>
struct Lanes {
  std::array<T, kWarpSize> v{};

  T& operator[](unsigned lane) { return v[lane]; }
  const T& operator[](unsigned lane) const { return v[lane]; }

  static Lanes broadcast(T x) {
    Lanes out;
    out.v.fill(x);
    return out;
  }

  /// The lane-index register (0, 1, ..., 31) — CUDA's threadIdx.x % 32.
  static Lanes<unsigned> lane_id() {
    Lanes<unsigned> out;
    for (unsigned i = 0; i < kWarpSize; ++i) out.v[i] = i;
    return out;
  }
};

/// Elementwise map over active lanes; inactive lanes keep `fill`.
template <typename R, typename T, typename Fn>
Lanes<R> lane_map(const Lanes<T>& x, LaneMask m, Fn&& fn, R fill = R{}) {
  Lanes<R> out = Lanes<R>::broadcast(fill);
  for (unsigned i = 0; i < kWarpSize; ++i) {
    if (lane_active(m, i)) out.v[i] = fn(x.v[i]);
  }
  return out;
}

/// Deterministic warp tree-reduction (add), the semantics of
/// cooperative_groups::reduce with plus<>: a fixed shfl_down butterfly
/// (offsets 16, 8, 4, 2, 1).  Inactive lanes contribute the additive
/// identity.  The fixed combination order is what makes the paper's kernel
/// bitwise reproducible run-to-run.
template <typename T>
T warp_reduce_add(const Lanes<T>& x, LaneMask m = kFullMask) {
  std::array<T, kWarpSize> tmp{};
  for (unsigned i = 0; i < kWarpSize; ++i) {
    tmp[i] = lane_active(m, i) ? x.v[i] : T{};
  }
  for (unsigned offset = kWarpSize / 2; offset > 0; offset /= 2) {
    for (unsigned i = 0; i < offset; ++i) {
      tmp[i] = tmp[i] + tmp[i + offset];
    }
  }
  return tmp[0];
}

/// Warp-wide inclusive segmented prefix data: head flags mark the first lane
/// of each segment.  Used by the adaptive (cuSPARSE-style) kernel to reduce
/// several short rows held by one warp, again in a fixed deterministic order.
template <typename T>
Lanes<T> warp_segmented_inclusive_sum(const Lanes<T>& x, LaneMask head_flags,
                                      LaneMask active = kFullMask) {
  Lanes<T> out;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    out.v[i] = lane_active(active, i) ? x.v[i] : T{};
  }
  // Hillis–Steele with segment boundaries: lane i accumulates lane i-d unless
  // a segment head lies in (i-d, i].
  std::array<unsigned, kWarpSize> seg{};
  unsigned current = 0;
  for (unsigned i = 0; i < kWarpSize; ++i) {
    if (lane_active(head_flags, i)) current = i;
    seg[i] = current;
  }
  for (unsigned d = 1; d < kWarpSize; d *= 2) {
    Lanes<T> prev = out;
    for (unsigned i = kWarpSize; i-- > d;) {
      if (seg[i] <= i - d) {
        out.v[i] = prev.v[i - d] + prev.v[i];
      }
    }
  }
  return out;
}

}  // namespace pd::gpusim
