#include "gpusim/trace.hpp"

#include "gpusim/memory.hpp"

namespace pd::gpusim {

const char* to_string(TraceMode mode) {
  switch (mode) {
    case TraceMode::kSerial:
      return "serial";
    case TraceMode::kTraceReplay:
      return "trace_replay";
    case TraceMode::kFunctionalOnly:
      return "functional_only";
  }
  return "unknown";
}

namespace {

constexpr unsigned kSector = DeviceSpec::kSectorBytes;

/// Phase-1 scratch for the recording route.  thread_local so concurrent
/// blocks never share it; each record() copies the compacted sectors into
/// the block's own trace before the next request reuses the buffer.
SectorBuffer& record_scratch() {
  thread_local SectorBuffer scratch;
  return scratch;
}

void fill_span(SectorBuffer& scratch, std::uint64_t addr, unsigned size) {
  const std::uint64_t first = addr / kSector;
  const std::uint64_t last = (addr + size - 1) / kSector;
  scratch.reserve(static_cast<unsigned>(last - first + 1));
  for (std::uint64_t s = first; s <= last; ++s) {
    scratch.data[scratch.count++] = s;
  }
}

}  // namespace

void MemRoute::warp_access(const Lanes<std::uint64_t>& addr, unsigned size,
                           LaneMask mask, bool write) {
  switch (mode_) {
    case TraceMode::kSerial:
      mem_->warp_access(addr, size, mask, write);
      break;
    case TraceMode::kTraceReplay: {
      if (mask == 0) {
        return;
      }
      SectorBuffer& scratch = record_scratch();
      coalesce_warp_sectors(addr, size, mask, scratch);
      trace_->record(TraceOp::kWarp, write, scratch.data, scratch.count);
      break;
    }
    case TraceMode::kFunctionalOnly:
      break;
  }
}

void MemRoute::scalar_access(std::uint64_t addr, unsigned size, bool write) {
  switch (mode_) {
    case TraceMode::kSerial:
      mem_->scalar_access(addr, size, write);
      break;
    case TraceMode::kTraceReplay: {
      SectorBuffer& scratch = record_scratch();
      fill_span(scratch, addr, size);
      trace_->record(TraceOp::kScalar, write, scratch.data, scratch.count);
      break;
    }
    case TraceMode::kFunctionalOnly:
      break;
  }
}

void MemRoute::atomic_access(std::uint64_t addr, unsigned size) {
  switch (mode_) {
    case TraceMode::kSerial:
      mem_->atomic_access(addr, size);
      break;
    case TraceMode::kTraceReplay: {
      SectorBuffer& scratch = record_scratch();
      fill_span(scratch, addr, size);
      trace_->record(TraceOp::kAtomic, /*write=*/false, scratch.data,
                     scratch.count);
      break;
    }
    case TraceMode::kFunctionalOnly:
      break;
  }
}

}  // namespace pd::gpusim
