#pragma once
// Profiler-style kernel report — the simulator's answer to an Nsight Compute
// section page.  Formats a launch's measured counters and the performance
// model's term breakdown into the categories a GPU engineer expects:
// speed-of-light percentages, memory tables (coalescing, L2 hit rates, DRAM
// traffic split), occupancy and its limiter, and the bound-by verdict.

#include <string>

#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"

namespace pd::gpusim {

/// Which term of the model bounds the kernel.
enum class BoundBy { kDram, kL2, kAtomics, kIssue, kFlops, kLaunch };

BoundBy classify_bound(const PerfEstimate& estimate);
const char* to_string(BoundBy bound);

/// Multi-section text report for one launch.
std::string profile_report(const DeviceSpec& spec, const PerfInput& input,
                           const PerfEstimate& estimate,
                           const std::string& kernel_name);

}  // namespace pd::gpusim
