#include "gpusim/perf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pd::gpusim {

namespace {

/// DRAM bandwidth saturates once enough warps are resident; below ~65%
/// occupancy the memory system is latency-limited.
double occupancy_factor(double occupancy) {
  return std::min(1.0, occupancy / 0.65);
}

/// Short rows mean each warp issues only a few outstanding loads before its
/// reduction, limiting memory-level parallelism (Little's law).  r0 is the
/// device's mlp_row_scale, calibrated so the full-size paper matrices land on
/// the reported 80–87% (liver) and ~68% (prostate) bandwidth fractions.
double mlp_factor(double mean_work_per_warp, double r0) {
  PD_CHECK_MSG(mean_work_per_warp >= 0.0, "negative work per warp");
  return mean_work_per_warp / (mean_work_per_warp + r0);
}

/// Grids smaller than a few waves cannot keep every SM busy.
double wave_factor(double total_warps, const DeviceSpec& spec, double occupancy) {
  const double resident_warps =
      std::max(1.0, spec.num_sms * (spec.max_threads_per_sm / 32.0) * occupancy);
  const double waves = total_warps / resident_warps;
  return waves / (waves + 0.5);
}

}  // namespace

PerfEstimate estimate_performance(const DeviceSpec& spec, const PerfInput& in) {
  PerfEstimate out;

  const Occupancy occ = compute_occupancy(spec, in.config.threads_per_block,
                                          in.config.regs_per_thread);
  PD_CHECK_MSG(occ.limiter != Occupancy::Limiter::kInvalid,
               "launch configuration is invalid for this device");
  out.occupancy = occ.fraction;

  out.occupancy_factor = occupancy_factor(occ.fraction);
  out.mlp_factor = mlp_factor(in.mean_work_per_warp, spec.mlp_row_scale);
  out.wave_factor = wave_factor(static_cast<double>(in.config.total_warps()),
                                spec, occ.fraction);

  const double eff_bw_gbs = spec.peak_bw_gbs * spec.mem_efficiency *
                            out.occupancy_factor * out.mlp_factor *
                            out.wave_factor;
  const double dram_bytes = in.stats.dram_bytes();
  out.t_dram = eff_bw_gbs > 0.0 ? seconds_for_bytes(dram_bytes, eff_bw_gbs) : 0.0;

  const double l2_bytes = static_cast<double>(in.stats.traffic.l2_bytes());
  out.t_l2 = seconds_for_bytes(l2_bytes, spec.l2_bw_gbs);

  const double atomics = static_cast<double>(in.stats.traffic.l2_atomic_ops);
  out.t_atomic = atomics / (spec.atomic_gops * kGiga);

  // Instruction-issue term: every warp memory request replays once per
  // coalesced sector (vector and scalar alike); arithmetic instructions
  // issue once.
  const double issue_slots =
      static_cast<double>(in.stats.traffic.total_sectors()) +
      static_cast<double>(in.stats.compute.warp_arith_instrs);
  const double issue_rate = static_cast<double>(spec.num_sms) *
                            spec.warp_schedulers_per_sm * spec.sm_clock_ghz *
                            kGiga;
  out.t_issue = issue_slots / issue_rate;

  const double peak_gflops = in.precision == FlopPrecision::kFp64
                                 ? spec.peak_fp64_gflops
                                 : spec.peak_fp32_gflops;
  out.t_flop = seconds_for_flops(in.stats.flops(), peak_gflops);

  // Block dispatch: the GigaThread engine hands out blocks at a finite rate,
  // so smaller blocks pay more scheduling time — the reason 512 edges out
  // 128/256 in the paper's Figure 4 sweep despite equal occupancy.
  out.t_dispatch = static_cast<double>(in.config.num_blocks) /
                   (spec.block_dispatch_gblocks * kGiga);

  const double t_max = std::max({out.t_dram, out.t_l2, out.t_atomic,
                                 out.t_issue, out.t_flop});
  out.seconds = spec.launch_overhead_s + out.t_dispatch + t_max;

  out.gflops = in.stats.flops() > 0.0
                   ? gflops_per_sec(in.stats.flops(), out.seconds)
                   : 0.0;
  out.dram_gbs = dram_bytes > 0.0 ? gbytes_per_sec(dram_bytes, out.seconds) : 0.0;
  out.operational_intensity =
      dram_bytes > 0.0 ? operational_intensity(in.stats.flops(), dram_bytes)
                       : 0.0;
  out.bandwidth_fraction = out.dram_gbs / spec.peak_bw_gbs;
  return out;
}

CpuSpec make_i9_7940x() { return CpuSpec{}; }

CpuEstimate estimate_cpu_performance(const CpuSpec& spec, const CpuWorkload& w) {
  CpuEstimate out;
  // Memory traffic: sequential matrix stream + scratch-array scatter with the
  // calibrated amplification + the final deterministic reduction of the
  // per-thread scratch dose arrays (each scratch array read once, output
  // written once).
  const double scatter_bytes = w.nnz * spec.scatter_bytes_per_nnz;
  const double reduce_bytes = (spec.cores + 1.0) * w.rows * 8.0;
  const double total_bytes = w.stream_bytes + scatter_bytes + reduce_bytes;
  out.t_mem =
      seconds_for_bytes(total_bytes, spec.peak_bw_gbs * spec.mem_efficiency);

  // Core-side decode/accumulate cost of the compressed custom format.
  out.t_core = w.nnz * spec.cycles_per_nnz /
               (static_cast<double>(spec.cores) * spec.clock_ghz * kGiga);

  out.seconds = std::max(out.t_mem, out.t_core);
  out.gflops = w.flops > 0.0 ? gflops_per_sec(w.flops, out.seconds) : 0.0;
  return out;
}

}  // namespace pd::gpusim
