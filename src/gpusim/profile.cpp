#include "gpusim/profile.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace pd::gpusim {

BoundBy classify_bound(const PerfEstimate& estimate) {
  const double t_max = std::max({estimate.t_dram, estimate.t_l2,
                                 estimate.t_atomic, estimate.t_issue,
                                 estimate.t_flop});
  // seconds = launch overhead + dispatch + max term; if the overheads exceed
  // the max term, the kernel is too small to be bound by anything physical.
  if (estimate.seconds - t_max > t_max) {
    return BoundBy::kLaunch;
  }
  if (t_max == estimate.t_dram) return BoundBy::kDram;
  if (t_max == estimate.t_l2) return BoundBy::kL2;
  if (t_max == estimate.t_atomic) return BoundBy::kAtomics;
  if (t_max == estimate.t_issue) return BoundBy::kIssue;
  return BoundBy::kFlops;
}

const char* to_string(BoundBy bound) {
  switch (bound) {
    case BoundBy::kDram: return "DRAM bandwidth";
    case BoundBy::kL2: return "L2 bandwidth";
    case BoundBy::kAtomics: return "L2 atomic throughput";
    case BoundBy::kIssue: return "instruction issue";
    case BoundBy::kFlops: return "FP throughput";
    case BoundBy::kLaunch: return "launch/dispatch overhead";
  }
  return "unknown";
}

std::string profile_report(const DeviceSpec& spec, const PerfInput& input,
                           const PerfEstimate& estimate,
                           const std::string& kernel_name) {
  const auto& tc = input.stats.traffic;
  const auto& cc = input.stats.compute;
  std::ostringstream os;
  os << "=== Kernel profile: " << kernel_name << " on " << spec.name
     << " ===\n\n";

  {
    pd::TextTable t({"Speed of light", "value"});
    const double peak = input.precision == FlopPrecision::kFp64
                            ? spec.peak_fp64_gflops
                            : spec.peak_fp32_gflops;
    t.add_row({"modeled duration", pd::fmt_sci(estimate.seconds, 3) + " s"});
    t.add_row({"DRAM throughput", pd::fmt_double(estimate.dram_gbs, 1) +
                                      " GB/s (" +
                                      pd::fmt_percent(estimate.bandwidth_fraction, 1) +
                                      " of peak)"});
    t.add_row({"FP throughput", pd::fmt_double(estimate.gflops, 1) +
                                    " GFLOP/s (" +
                                    pd::fmt_percent(estimate.gflops / peak, 1) +
                                    " of peak)"});
    t.add_row({"bound by", to_string(classify_bound(estimate))});
    os << t.str() << "\n";
  }

  {
    pd::TextTable t({"Memory workload", "value"});
    t.add_row({"DRAM read", pd::fmt_bytes(static_cast<double>(tc.dram_read_bytes))});
    t.add_row({"DRAM write", pd::fmt_bytes(static_cast<double>(tc.dram_write_bytes))});
    t.add_row({"L2 requests", std::to_string(tc.l2_read_sectors +
                                             tc.l2_write_sectors) +
                                  " sectors"});
    const std::uint64_t reads = tc.l2_read_sectors;
    const double hit_rate =
        reads > 0 ? static_cast<double>(tc.l2_read_hits) /
                        static_cast<double>(reads)
                  : 0.0;
    t.add_row({"L2 read hit rate", pd::fmt_percent(hit_rate, 1)});
    t.add_row({"L2 atomic ops", std::to_string(tc.l2_atomic_ops)});
    t.add_row({"warp requests", std::to_string(tc.warp_requests) + " (" +
                                    std::to_string(tc.sectors_requested) +
                                    " sectors)"});
    t.add_row({"scalar requests", std::to_string(tc.scalar_requests) + " (" +
                                      std::to_string(tc.scalar_sectors) +
                                      " sectors)"});
    t.add_row({"sectors / warp request", pd::fmt_double(tc.sectors_per_request(), 2) +
                                             " (4.0 = fully coalesced 4B)"});
    t.add_row({"operational intensity",
               pd::fmt_double(estimate.operational_intensity, 3) + " FLOP/B"});
    os << t.str() << "\n";
  }

  {
    pd::TextTable t({"Compute / launch", "value"});
    t.add_row({"FLOPs", pd::fmt_sci(input.stats.flops(), 3)});
    t.add_row({"SIMT lane efficiency", pd::fmt_percent(cc.simt_efficiency(), 1)});
    t.add_row({"warps launched", std::to_string(input.stats.warps_launched)});
    t.add_row({"blocks", std::to_string(input.stats.blocks_launched) + " x " +
                             std::to_string(input.config.threads_per_block) +
                             " threads"});
    const Occupancy occ = compute_occupancy(spec, input.config.threads_per_block,
                                            input.config.regs_per_thread);
    t.add_row({"occupancy", pd::fmt_percent(occ.fraction, 0) +
                                " (limited by " + to_string(occ.limiter) + ")"});
    os << t.str() << "\n";
  }

  {
    pd::TextTable t({"Model term", "seconds", "share of bound"});
    const double t_max = std::max({estimate.t_dram, estimate.t_l2,
                                   estimate.t_atomic, estimate.t_issue,
                                   estimate.t_flop});
    auto row = [&](const char* name, double value) {
      t.add_row({name, pd::fmt_sci(value, 2),
                 t_max > 0 ? pd::fmt_percent(value / t_max, 0) : "-"});
    };
    row("t_dram", estimate.t_dram);
    row("t_l2", estimate.t_l2);
    row("t_atomic", estimate.t_atomic);
    row("t_issue", estimate.t_issue);
    row("t_flop", estimate.t_flop);
    row("t_dispatch (additive)", estimate.t_dispatch);
    os << t.str();
    os << "bandwidth efficiency factors: occupancy "
       << pd::fmt_double(estimate.occupancy_factor, 2) << " x short-row MLP "
       << pd::fmt_double(estimate.mlp_factor, 2) << " x wave "
       << pd::fmt_double(estimate.wave_factor, 2) << "\n";
  }
  return os.str();
}

}  // namespace pd::gpusim
