#pragma once
// Dose-volume histograms and plan-quality metrics.
//
// The DVH is the standard clinical evaluation of a treatment plan: for each
// structure, the fraction of its volume receiving at least a given dose.
// The planning loop the paper accelerates is judged by these curves, so the
// library ships them: cumulative DVH per ROI, the D_x / V_x point metrics
// clinicians quote (e.g. D95 = dose covering 95% of the target), and the
// homogeneity / conformity indices used to compare plans.

#include <cstdint>
#include <span>
#include <vector>

#include "phantom/phantom.hpp"

namespace pd::opt {

/// Cumulative dose-volume histogram of one structure.
class Dvh {
 public:
  /// Build from the dose values of the structure's voxels.
  static Dvh from_doses(std::vector<double> voxel_doses);

  /// Build for a ROI of a phantom given the full dose grid.
  static Dvh for_roi(const phantom::Phantom& phantom, phantom::Roi roi,
                     std::span<const double> dose);

  std::size_t voxel_count() const { return sorted_doses_.size(); }

  /// V(d): fraction of the volume receiving at least dose d.
  double volume_at_dose(double dose_gy) const;

  /// D(v): minimum dose received by the hottest fraction v of the volume —
  /// e.g. dose_at_volume(0.95) is the clinical D95.
  double dose_at_volume(double volume_fraction) const;

  double min_dose() const;
  double max_dose() const;
  double mean_dose() const;

  /// Sampled cumulative curve: `points` pairs (dose, volume fraction),
  /// linearly spaced in dose from 0 to max.
  struct Point {
    double dose = 0.0;
    double volume_fraction = 0.0;
  };
  std::vector<Point> curve(std::size_t points = 50) const;

 private:
  std::vector<double> sorted_doses_;  ///< ascending
};

/// Homogeneity index of the target dose: (D2% - D98%) / D50% — 0 is ideal.
double homogeneity_index(const Dvh& target_dvh);

/// Paddick-style conformity: how much of the prescription isodose volume is
/// inside the target.  Needs the whole dose grid.
double conformity_index(const phantom::Phantom& phantom,
                        std::span<const double> dose, double prescription_gy);

}  // namespace pd::opt
