#include "opt/objective.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pd::opt {

void DoseObjective::add_term(ObjectiveTerm term) {
  PD_CHECK_MSG(!term.voxels.empty(), "objective term has no voxels");
  PD_CHECK_MSG(term.weight >= 0.0, "objective term has negative weight");
  terms_.push_back(std::move(term));
}

double DoseObjective::value(std::span<const double> dose) const {
  double total = 0.0;
  for (const ObjectiveTerm& term : terms_) {
    double acc = 0.0;
    for (const std::uint64_t v : term.voxels) {
      PD_ASSERT(v < dose.size());
      const double d = dose[v];
      if (term.type == ObjectiveTerm::Type::kUniformDose) {
        const double e = d - term.dose_level;
        acc += e * e;
      } else {
        const double e = std::max(0.0, d - term.dose_level);
        acc += e * e;
      }
    }
    total += term.weight * acc / static_cast<double>(term.voxels.size());
  }
  return total;
}

std::vector<double> DoseObjective::dose_gradient(
    std::span<const double> dose) const {
  std::vector<double> grad(dose.size(), 0.0);
  for (const ObjectiveTerm& term : terms_) {
    const double scale = 2.0 * term.weight / static_cast<double>(term.voxels.size());
    for (const std::uint64_t v : term.voxels) {
      const double d = dose[v];
      if (term.type == ObjectiveTerm::Type::kUniformDose) {
        grad[v] += scale * (d - term.dose_level);
      } else if (d > term.dose_level) {
        grad[v] += scale * (d - term.dose_level);
      }
    }
  }
  return grad;
}

DoseObjective DoseObjective::standard_goals(const phantom::Phantom& phantom,
                                            double prescription_gy,
                                            double oar_tolerance_gy) {
  PD_CHECK_MSG(prescription_gy > 0.0, "prescription must be positive");
  DoseObjective obj;

  ObjectiveTerm target;
  target.type = ObjectiveTerm::Type::kUniformDose;
  target.voxels = phantom.voxels_with_roi(phantom::Roi::kTarget);
  target.dose_level = prescription_gy;
  target.weight = 100.0;
  obj.add_term(std::move(target));

  const auto oars = phantom.voxels_with_roi(phantom::Roi::kOar);
  if (!oars.empty()) {
    ObjectiveTerm oar;
    oar.type = ObjectiveTerm::Type::kMaxDose;
    oar.voxels = oars;
    oar.dose_level = oar_tolerance_gy;
    oar.weight = 50.0;
    obj.add_term(std::move(oar));
  }

  const auto tissue = phantom.voxels_with_roi(phantom::Roi::kTissue);
  if (!tissue.empty()) {
    ObjectiveTerm normal;
    normal.type = ObjectiveTerm::Type::kMaxDose;
    normal.voxels = tissue;
    normal.dose_level = 0.5 * prescription_gy;
    normal.weight = 5.0;
    obj.add_term(std::move(normal));
  }
  return obj;
}

}  // namespace pd::opt
