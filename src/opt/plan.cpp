#include "opt/plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/reference.hpp"

namespace pd::opt {

std::size_t TreatmentPlan::add_beam(std::string name, double gantry_angle_deg,
                                    sparse::CsrF64 matrix) {
  matrix.validate();
  if (beams_.empty()) {
    num_voxels_ = matrix.num_rows;
  } else {
    PD_CHECK_MSG(matrix.num_rows == num_voxels_,
                 "plan: beams must share the dose grid");
  }
  PD_CHECK_MSG(total_spots_ + matrix.num_cols <= (std::uint64_t{1} << 32),
               "plan: total spot count exceeds 32-bit columns");
  BeamInfo info;
  info.name = std::move(name);
  info.gantry_angle_deg = gantry_angle_deg;
  info.first_spot = static_cast<std::uint32_t>(total_spots_);
  info.num_spots = static_cast<std::uint32_t>(matrix.num_cols);
  total_spots_ += matrix.num_cols;
  beams_.push_back(std::move(info));
  matrices_.push_back(std::move(matrix));
  return beams_.size() - 1;
}

const TreatmentPlan::BeamInfo& TreatmentPlan::beam(std::size_t index) const {
  PD_CHECK_MSG(index < beams_.size(), "plan: beam index out of range");
  return beams_[index];
}

sparse::CsrF64 TreatmentPlan::combined_matrix() const {
  PD_CHECK_MSG(!beams_.empty(), "plan: no beams added");
  sparse::CooMatrix<double> coo;
  coo.num_rows = num_voxels_;
  coo.num_cols = total_spots_;
  std::uint64_t nnz = 0;
  for (const auto& m : matrices_) {
    nnz += m.nnz();
  }
  coo.entries.reserve(nnz);
  for (std::size_t b = 0; b < beams_.size(); ++b) {
    const auto& m = matrices_[b];
    const std::uint32_t offset = beams_[b].first_spot;
    for (std::uint64_t r = 0; r < m.num_rows; ++r) {
      for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
        coo.entries.push_back(sparse::CooEntry<double>{
            static_cast<std::uint32_t>(r), offset + m.col_idx[k], m.values[k]});
      }
    }
  }
  return sparse::coo_to_csr(coo);
}

std::pair<std::size_t, std::uint32_t> TreatmentPlan::locate_spot(
    std::uint32_t global) const {
  PD_CHECK_MSG(global < total_spots_, "plan: spot index out of range");
  for (std::size_t b = 0; b < beams_.size(); ++b) {
    if (global < beams_[b].first_spot + beams_[b].num_spots) {
      return {b, global - beams_[b].first_spot};
    }
  }
  throw Error("plan: spot mapping corrupted");
}

std::vector<double> TreatmentPlan::beam_weights(
    std::size_t beam_index, const std::vector<double>& global) const {
  PD_CHECK_MSG(beam_index < beams_.size(), "plan: beam index out of range");
  PD_CHECK_MSG(global.size() == total_spots_, "plan: weight vector size mismatch");
  const BeamInfo& info = beams_[beam_index];
  return std::vector<double>(global.begin() + info.first_spot,
                             global.begin() + info.first_spot + info.num_spots);
}

std::vector<std::vector<double>> TreatmentPlan::per_beam_dose(
    const std::vector<double>& global_weights) const {
  PD_CHECK_MSG(global_weights.size() == total_spots_,
               "plan: weight vector size mismatch");
  std::vector<std::vector<double>> doses;
  doses.reserve(beams_.size());
  for (std::size_t b = 0; b < beams_.size(); ++b) {
    std::vector<double> dose(num_voxels_, 0.0);
    sparse::reference_spmv(matrices_[b], beam_weights(b, global_weights),
                           dose);
    doses.push_back(std::move(dose));
  }
  return doses;
}

std::size_t TreatmentPlan::apply_minimum_spot_weight(
    std::vector<double>& weights, double min_weight_fraction) {
  PD_CHECK_MSG(min_weight_fraction >= 0.0 && min_weight_fraction < 1.0,
               "plan: min weight fraction must be in [0, 1)");
  double max_w = 0.0;
  for (const double w : weights) {
    max_w = std::max(max_w, w);
  }
  const double min_w = min_weight_fraction * max_w;
  std::size_t modified = 0;
  for (double& w : weights) {
    if (w > 0.0 && w < min_w) {
      // Round to whichever deliverable value (0 or min) is closer.
      w = (w < 0.5 * min_w) ? 0.0 : min_w;
      ++modified;
    }
  }
  return modified;
}

}  // namespace pd::opt
