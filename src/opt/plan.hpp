#pragma once
// TreatmentPlan — multi-beam plan composition.
//
// A clinical plan delivers several beams (four for the paper's liver case,
// two for the prostate case); the optimizer works on ALL their spots at
// once.  TreatmentPlan owns the per-beam dose deposition matrices, exposes
// the combined block matrix [D_1 | D_2 | ... | D_B] the optimizer needs, maps
// between global spot indices and (beam, local spot), and applies the
// machine-deliverability post-processing step (minimum monitor units: spots
// below a deliverable weight are rounded to zero or to the minimum).

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace pd::opt {

class TreatmentPlan {
 public:
  struct BeamInfo {
    std::string name;
    double gantry_angle_deg = 0.0;
    std::uint32_t first_spot = 0;  ///< Global column index of this beam's spot 0.
    std::uint32_t num_spots = 0;
  };

  /// Add one beam's dose deposition matrix.  All beams must share the dose
  /// grid (row count).  Returns the beam index.
  std::size_t add_beam(std::string name, double gantry_angle_deg,
                       sparse::CsrF64 matrix);

  std::size_t num_beams() const { return beams_.size(); }
  std::uint64_t num_voxels() const { return num_voxels_; }
  std::uint64_t total_spots() const { return total_spots_; }
  const BeamInfo& beam(std::size_t index) const;

  /// The combined matrix (columns of beam b occupy
  /// [first_spot, first_spot + num_spots)).
  sparse::CsrF64 combined_matrix() const;

  /// Map a global spot index to (beam index, local spot index).
  std::pair<std::size_t, std::uint32_t> locate_spot(std::uint32_t global) const;

  /// Slice a global weight vector into the given beam's weights.
  std::vector<double> beam_weights(std::size_t beam_index,
                                   const std::vector<double>& global) const;

  /// Each beam's contribution to the total dose for the given weights
  /// (host evaluation; one entry per beam, each of length num_voxels()).
  std::vector<std::vector<double>> per_beam_dose(
      const std::vector<double>& global_weights) const;

  /// Machine deliverability: spots with weight below `min_weight *
  /// max_weight` cannot be delivered.  Each is either zeroed or raised to
  /// the minimum, whichever changes its value less.  Returns the number of
  /// modified spots.
  static std::size_t apply_minimum_spot_weight(std::vector<double>& weights,
                                               double min_weight_fraction);

 private:
  std::vector<BeamInfo> beams_;
  std::vector<sparse::CsrF64> matrices_;
  std::uint64_t num_voxels_ = 0;
  std::uint64_t total_spots_ = 0;
};

}  // namespace pd::opt
