#pragma once
// Treatment-plan objective functions (paper §I/§II: the optimizer whose inner
// loop the dose calculation serves).
//
// The objective is the standard quadratic planning form: promote a uniform
// prescription dose in the target and penalize dose above tolerance in
// organs at risk.  Both terms are differentiable in the dose, and the chain
// rule through dose = D·x gives the gradient D^T (∂f/∂dose) — so one
// optimizer iteration costs one SpMV and one transposed SpMV, which is why
// the paper's kernel sits on the clinical critical path.

#include <cstdint>
#include <span>
#include <vector>

#include "phantom/phantom.hpp"

namespace pd::opt {

struct ObjectiveTerm {
  enum class Type {
    kUniformDose,  ///< weight · mean((d_v - level)^2) over voxels.
    kMaxDose,      ///< weight · mean(max(0, d_v - level)^2) over voxels.
  };
  Type type = Type::kUniformDose;
  std::vector<std::uint64_t> voxels;
  double dose_level = 0.0;  ///< Gy.
  double weight = 1.0;
};

class DoseObjective {
 public:
  void add_term(ObjectiveTerm term);
  const std::vector<ObjectiveTerm>& terms() const { return terms_; }

  /// f(dose).
  double value(std::span<const double> dose) const;

  /// ∂f/∂dose (same length as dose).
  std::vector<double> dose_gradient(std::span<const double> dose) const;

  /// Standard clinical goals for a phantom: uniform prescription in the
  /// target, max-dose tolerance on OARs, low dose in normal tissue.
  static DoseObjective standard_goals(const phantom::Phantom& phantom,
                                      double prescription_gy,
                                      double oar_tolerance_gy);

 private:
  std::vector<ObjectiveTerm> terms_;
};

}  // namespace pd::opt
