#include "opt/dvh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pd::opt {

Dvh Dvh::from_doses(std::vector<double> voxel_doses) {
  PD_CHECK_MSG(!voxel_doses.empty(), "DVH: structure has no voxels");
  Dvh dvh;
  dvh.sorted_doses_ = std::move(voxel_doses);
  std::sort(dvh.sorted_doses_.begin(), dvh.sorted_doses_.end());
  return dvh;
}

Dvh Dvh::for_roi(const phantom::Phantom& phantom, phantom::Roi roi,
                 std::span<const double> dose) {
  PD_CHECK_MSG(dose.size() == phantom.grid().num_voxels(),
               "DVH: dose grid size mismatch");
  std::vector<double> doses;
  for (const std::uint64_t v : phantom.voxels_with_roi(roi)) {
    doses.push_back(dose[v]);
  }
  return from_doses(std::move(doses));
}

double Dvh::volume_at_dose(double dose_gy) const {
  // Fraction of voxels with dose >= dose_gy.
  const auto it = std::lower_bound(sorted_doses_.begin(), sorted_doses_.end(),
                                   dose_gy);
  return static_cast<double>(sorted_doses_.end() - it) /
         static_cast<double>(sorted_doses_.size());
}

double Dvh::dose_at_volume(double volume_fraction) const {
  PD_CHECK_MSG(volume_fraction >= 0.0 && volume_fraction <= 1.0,
               "DVH: volume fraction out of [0, 1]");
  if (volume_fraction <= 0.0) {
    return max_dose();
  }
  // The hottest `volume_fraction` of voxels: index from the top.
  const auto n = static_cast<double>(sorted_doses_.size());
  auto idx = static_cast<std::size_t>(std::ceil(n * (1.0 - volume_fraction)));
  idx = std::min(idx, sorted_doses_.size() - 1);
  return sorted_doses_[idx];
}

double Dvh::min_dose() const { return sorted_doses_.front(); }
double Dvh::max_dose() const { return sorted_doses_.back(); }

double Dvh::mean_dose() const {
  double sum = 0.0;
  for (const double d : sorted_doses_) {
    sum += d;
  }
  return sum / static_cast<double>(sorted_doses_.size());
}

std::vector<Dvh::Point> Dvh::curve(std::size_t points) const {
  PD_CHECK_MSG(points >= 2, "DVH curve needs >= 2 points");
  std::vector<Point> out;
  out.reserve(points);
  const double hi = max_dose();
  for (std::size_t i = 0; i < points; ++i) {
    const double d = hi * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Point{d, volume_at_dose(d)});
  }
  return out;
}

double homogeneity_index(const Dvh& target_dvh) {
  const double d2 = target_dvh.dose_at_volume(0.02);
  const double d98 = target_dvh.dose_at_volume(0.98);
  const double d50 = target_dvh.dose_at_volume(0.50);
  PD_CHECK_MSG(d50 > 0.0, "homogeneity index undefined for a zero median dose");
  return (d2 - d98) / d50;
}

double conformity_index(const phantom::Phantom& phantom,
                        std::span<const double> dose, double prescription_gy) {
  PD_CHECK_MSG(dose.size() == phantom.grid().num_voxels(),
               "conformity: dose grid size mismatch");
  PD_CHECK_MSG(prescription_gy > 0.0, "conformity: prescription must be positive");
  std::uint64_t isodose_total = 0;    // voxels receiving >= prescription
  std::uint64_t isodose_in_target = 0;
  std::uint64_t target_total = 0;
  for (std::uint64_t v = 0; v < dose.size(); ++v) {
    const bool in_target = phantom.roi(v) == phantom::Roi::kTarget;
    target_total += in_target;
    if (dose[v] >= prescription_gy) {
      ++isodose_total;
      isodose_in_target += in_target;
    }
  }
  PD_CHECK_MSG(target_total > 0, "conformity: phantom has no target");
  if (isodose_total == 0) {
    return 0.0;
  }
  // Paddick: (TV_PIV)^2 / (TV * PIV).
  const double tv_piv = static_cast<double>(isodose_in_target);
  return tv_piv * tv_piv /
         (static_cast<double>(target_total) * static_cast<double>(isodose_total));
}

}  // namespace pd::opt
