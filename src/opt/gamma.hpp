#pragma once
// Gamma analysis — the clinical standard for comparing dose distributions
// (Low et al., Med. Phys. 1998).
//
// A voxel passes if some nearby reference voxel agrees within a combined
// dose-difference (ΔD, % of prescription) and distance-to-agreement (DTA, mm)
// tolerance:  γ(v) = min over neighbours u of
//     sqrt( (dist(v,u)/DTA)^2 + ((D_eval(v) - D_ref(u))/ΔD)^2 )  <= 1.
//
// The paper asserts half-precision matrix storage is clinically safe; gamma
// pass rates are how a clinic would verify that claim, so the library ships
// the tool (and `ablation_value_type` reports γ(1%,1mm) pass rates for every
// 16-bit storage format).

#include <cstdint>
#include <span>

#include "phantom/grid.hpp"

namespace pd::opt {

struct GammaCriteria {
  double dose_tolerance_fraction = 0.01;  ///< ΔD as a fraction of dose_norm.
  double distance_tolerance_mm = 1.0;     ///< DTA.
  /// Voxels below this fraction of dose_norm are skipped (standard
  /// low-dose-threshold, usually 10%).
  double low_dose_threshold_fraction = 0.10;
};

struct GammaResult {
  std::uint64_t evaluated = 0;  ///< Voxels above the low-dose threshold.
  std::uint64_t passed = 0;
  double pass_rate = 0.0;       ///< passed / evaluated (1.0 if none evaluated).
  double mean_gamma = 0.0;      ///< Mean γ over evaluated voxels (capped at 2).
  double max_gamma = 0.0;       ///< Max γ over evaluated voxels (capped at 2).
};

/// Compare an evaluated dose grid against a reference on the same voxel
/// grid.  `dose_norm` is the normalization dose (commonly the prescription
/// or the reference maximum; pass 0 to use the reference maximum).
GammaResult gamma_analysis(const phantom::VoxelGrid& grid,
                           std::span<const double> reference,
                           std::span<const double> evaluated,
                           const GammaCriteria& criteria = {},
                           double dose_norm = 0.0);

}  // namespace pd::opt
