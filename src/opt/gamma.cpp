#include "opt/gamma.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pd::opt {

GammaResult gamma_analysis(const phantom::VoxelGrid& grid,
                           std::span<const double> reference,
                           std::span<const double> evaluated,
                           const GammaCriteria& criteria, double dose_norm) {
  PD_CHECK_MSG(reference.size() == grid.num_voxels(),
               "gamma: reference size mismatch");
  PD_CHECK_MSG(evaluated.size() == grid.num_voxels(),
               "gamma: evaluated size mismatch");
  PD_CHECK_MSG(criteria.dose_tolerance_fraction > 0.0,
               "gamma: dose tolerance must be positive");
  PD_CHECK_MSG(criteria.distance_tolerance_mm > 0.0,
               "gamma: distance tolerance must be positive");

  if (dose_norm <= 0.0) {
    for (const double d : reference) {
      dose_norm = std::max(dose_norm, d);
    }
  }
  PD_CHECK_MSG(dose_norm > 0.0, "gamma: reference dose is identically zero");

  const double dd_abs = criteria.dose_tolerance_fraction * dose_norm;
  const double dta = criteria.distance_tolerance_mm;
  const double threshold = criteria.low_dose_threshold_fraction * dose_norm;

  // Search radius: beyond 2*DTA the distance term alone exceeds γ = 2, the
  // cap we report, so a fixed neighbourhood suffices.
  const auto reach =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    std::ceil(2.0 * dta / grid.spacing())));

  GammaResult result;
  double gamma_sum = 0.0;
  for (std::uint64_t v = 0; v < grid.num_voxels(); ++v) {
    if (reference[v] < threshold && evaluated[v] < threshold) {
      continue;
    }
    const phantom::VoxelIndex c = grid.from_linear(v);
    double best_sq = std::numeric_limits<double>::infinity();
    for (std::int64_t dk = -reach; dk <= reach && best_sq > 1.0; ++dk) {
      for (std::int64_t dj = -reach; dj <= reach && best_sq > 1.0; ++dj) {
        for (std::int64_t di = -reach; di <= reach && best_sq > 1.0; ++di) {
          const phantom::VoxelIndex u{c.i + di, c.j + dj, c.k + dk};
          if (!grid.contains(u)) {
            continue;
          }
          const double dist_mm =
              grid.spacing() * std::sqrt(static_cast<double>(di * di + dj * dj +
                                                             dk * dk));
          const double dist_term = dist_mm / dta;
          if (dist_term * dist_term >= best_sq) {
            continue;
          }
          const double dd =
              (evaluated[v] - reference[grid.linear_index(u)]) / dd_abs;
          best_sq = std::min(best_sq, dist_term * dist_term + dd * dd);
        }
      }
    }
    const double gamma = std::min(2.0, std::sqrt(best_sq));
    ++result.evaluated;
    result.passed += (gamma <= 1.0);
    gamma_sum += gamma;
    result.max_gamma = std::max(result.max_gamma, gamma);
  }
  result.pass_rate = result.evaluated == 0
                         ? 1.0
                         : static_cast<double>(result.passed) /
                               static_cast<double>(result.evaluated);
  result.mean_gamma = result.evaluated == 0
                          ? 0.0
                          : gamma_sum / static_cast<double>(result.evaluated);
  return result;
}

}  // namespace pd::opt
