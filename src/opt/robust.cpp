#include "opt/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/error.hpp"
#include "sparse/coo.hpp"
#include "sparse/partition.hpp"

namespace pd::opt {

namespace {

kernels::DoseEngine make_engine(sparse::CsrF64 matrix,
                                const gpusim::DeviceSpec& device,
                                const RobustConfig& config) {
  kernels::DoseEngine engine(std::move(matrix), device, config.precision,
                             kernels::kDefaultVectorTpb,
                             kernels::SpmvFamily::kVector, config.backend);
  engine.set_engine_options(config.engine);
  engine.set_native_threads(config.native_threads);
  return engine;
}

}  // namespace

RobustPlanOptimizer::RobustPlanOptimizer(std::vector<sparse::CsrF64> scenarios,
                                         DoseObjective objective,
                                         gpusim::DeviceSpec device,
                                         RobustConfig config,
                                         std::vector<double> weights)
    : objective_(std::move(objective)),
      config_(config),
      device_(device),
      scenario_weights_(std::move(weights)) {
  PD_CHECK_MSG(!scenarios.empty(), "robust: need at least one scenario");
  const std::uint64_t cols = scenarios.front().num_cols;
  const std::uint64_t rows = scenarios.front().num_rows;
  std::uint64_t total_nnz = 0;
  for (const auto& s : scenarios) {
    PD_CHECK_MSG(s.num_cols == cols,
                 "robust: scenarios must share the spot set");
    PD_CHECK_MSG(s.num_rows == rows,
                 "robust: scenarios must share the dose grid");
    total_nnz += s.nnz();
  }
  if (scenario_weights_.empty()) {
    scenario_weights_.assign(scenarios.size(),
                             1.0 / static_cast<double>(scenarios.size()));
  }
  PD_CHECK_MSG(scenario_weights_.size() == scenarios.size(),
               "robust: weight count must equal scenario count");
  for (const double w : scenario_weights_) {
    PD_CHECK_MSG(w >= 0.0, "robust: negative scenario weight");
  }
  num_scenarios_ = scenarios.size();
  rows_per_scenario_ = rows;

  WallTimer timer;
  if (num_scenarios_ > 1 &&
      total_nnz <= std::numeric_limits<std::uint32_t>::max()) {
    forward_stacked_ = std::make_unique<kernels::DoseEngine>(make_engine(
        sparse::vstack_rows(std::span<const sparse::CsrF64>(scenarios)),
        device_, config_));
  } else if (num_scenarios_ == 1) {
    // One scenario: the "stack" is the matrix itself; skip the copy.
    forward_stacked_ = std::make_unique<kernels::DoseEngine>(
        make_engine(sparse::CsrF64(scenarios.front()), device_, config_));
  } else {
    // Stacked offsets would overflow 32-bit row_ptr: keep one forward
    // engine per scenario and loop them in evaluate().
    for (const auto& s : scenarios) {
      forward_split_.push_back(std::make_unique<kernels::DoseEngine>(
          make_engine(sparse::CsrF64(s), device_, config_)));
    }
  }
  // Transpose engines are built lazily in transpose_engine(); keep the
  // scenario matrices as their sources until then.
  transpose_.resize(num_scenarios_);
  scenario_matrices_ = std::move(scenarios);
  setup_seconds_ = timer.seconds();
}

kernels::DoseEngine& RobustPlanOptimizer::transpose_engine(std::size_t k) {
  if (!transpose_[k]) {
    WallTimer timer;
    transpose_[k] = std::make_unique<kernels::DoseEngine>(
        make_engine(sparse::transpose(scenario_matrices_[k]), device_,
                    config_));
    scenario_matrices_[k] = sparse::CsrF64{};  // source no longer needed
    setup_seconds_ += timer.seconds();
  }
  return *transpose_[k];
}

double RobustPlanOptimizer::combine(
    const std::vector<double>& per_scenario) const {
  if (config_.mode == RobustMode::kWorstCase) {
    return *std::max_element(per_scenario.begin(), per_scenario.end());
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < per_scenario.size(); ++k) {
    acc += scenario_weights_[k] * per_scenario[k];
  }
  return acc;
}

RobustPlanOptimizer::Evaluation RobustPlanOptimizer::evaluate(
    const std::vector<double>& x, std::uint64_t* spmv_count) {
  Evaluation ev;
  ev.doses.reserve(num_scenarios_);
  if (forward_stacked_) {
    // One traversal of the stacked matrix yields every scenario dose as a
    // row slice; batch-aware accounting still counts K products.
    const std::vector<double> stacked = forward_stacked_->compute(x);
    *spmv_count += num_scenarios_;
    for (std::size_t k = 0; k < num_scenarios_; ++k) {
      const auto begin = stacked.begin() +
                         static_cast<std::ptrdiff_t>(k * rows_per_scenario_);
      ev.doses.emplace_back(begin,
                            begin + static_cast<std::ptrdiff_t>(
                                        rows_per_scenario_));
      ev.per_scenario.push_back(objective_.value(ev.doses.back()));
    }
  } else {
    for (auto& engine : forward_split_) {
      ev.doses.push_back(engine->compute(x));
      ++*spmv_count;
      ev.per_scenario.push_back(objective_.value(ev.doses.back()));
    }
  }
  ev.robust_value = combine(ev.per_scenario);
  return ev;
}

RobustResult RobustPlanOptimizer::optimize() {
  RobustResult result;
  const std::uint64_t num_spots =
      forward_stacked_ ? forward_stacked_->num_spots()
                       : forward_split_.front()->num_spots();
  std::vector<double> x(num_spots, 1.0);

  Evaluation current = evaluate(x, &result.spmv_count);
  result.objective_history.push_back(current.robust_value);

  double step = config_.initial_step;
  for (unsigned it = 0; it < config_.max_iterations; ++it) {
    // Robust (sub)gradient in spot-weight space.
    std::vector<double> gx(num_spots, 0.0);
    if (config_.mode == RobustMode::kWorstCase) {
      // Smoothed minimax: softmax-weighted scenario gradients.  A pure
      // subgradient (gradient of the single argmax scenario) oscillates
      // between active scenarios and converges poorly; the log-sum-exp
      // smoothing is the standard fix and needs the same K transposed
      // SpMVs per iteration.
      const double f_max = *std::max_element(current.per_scenario.begin(),
                                             current.per_scenario.end());
      const double tau = std::max(1e-12, 0.05 * std::fabs(f_max));
      std::vector<double> soft(current.per_scenario.size());
      double norm = 0.0;
      for (std::size_t k = 0; k < soft.size(); ++k) {
        soft[k] = std::exp((current.per_scenario[k] - f_max) / tau);
        norm += soft[k];
      }
      for (std::size_t k = 0; k < soft.size(); ++k) {
        soft[k] /= norm;
        if (soft[k] < 1e-6) {
          continue;  // scenario far from active: skip its transpose product
        }
        const auto gdose = objective_.dose_gradient(current.doses[k]);
        const auto gk = transpose_engine(k).compute(gdose);
        ++result.spmv_count;
        for (std::uint64_t i = 0; i < num_spots; ++i) {
          gx[i] += soft[k] * gk[i];
        }
      }
    } else {
      for (std::size_t k = 0; k < num_scenarios_; ++k) {
        if (scenario_weights_[k] == 0.0) {
          continue;
        }
        const auto gdose = objective_.dose_gradient(current.doses[k]);
        const auto gk = transpose_engine(k).compute(gdose);
        ++result.spmv_count;
        for (std::uint64_t i = 0; i < num_spots; ++i) {
          gx[i] += scenario_weights_[k] * gk[i];
        }
      }
    }

    // Projected backtracking step.
    bool accepted = false;
    for (unsigned bt = 0; bt < config_.max_backtracks; ++bt) {
      std::vector<double> x_new(num_spots);
      for (std::uint64_t i = 0; i < num_spots; ++i) {
        x_new[i] = std::max(0.0, x[i] - step * gx[i]);
      }
      Evaluation trial = evaluate(x_new, &result.spmv_count);
      if (trial.robust_value < current.robust_value) {
        x = std::move(x_new);
        current = std::move(trial);
        accepted = true;
        step *= 1.2;
        break;
      }
      step *= config_.step_shrink;
    }
    ++result.iterations;
    result.objective_history.push_back(current.robust_value);
    if (!accepted) {
      break;
    }
  }

  result.spot_weights = std::move(x);
  result.scenario_doses = std::move(current.doses);
  result.final_scenario_objectives = std::move(current.per_scenario);
  result.setup_seconds = setup_seconds_;
  return result;
}

}  // namespace pd::opt
