#include "opt/robust.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pd::opt {

RobustPlanOptimizer::RobustPlanOptimizer(std::vector<sparse::CsrF64> scenarios,
                                         DoseObjective objective,
                                         gpusim::DeviceSpec device,
                                         RobustConfig config,
                                         std::vector<double> weights)
    : objective_(std::move(objective)),
      config_(config),
      scenario_weights_(std::move(weights)) {
  PD_CHECK_MSG(!scenarios.empty(), "robust: need at least one scenario");
  const std::uint64_t cols = scenarios.front().num_cols;
  const std::uint64_t rows = scenarios.front().num_rows;
  for (const auto& s : scenarios) {
    PD_CHECK_MSG(s.num_cols == cols,
                 "robust: scenarios must share the spot set");
    PD_CHECK_MSG(s.num_rows == rows,
                 "robust: scenarios must share the dose grid");
  }
  if (scenario_weights_.empty()) {
    scenario_weights_.assign(scenarios.size(),
                             1.0 / static_cast<double>(scenarios.size()));
  }
  PD_CHECK_MSG(scenario_weights_.size() == scenarios.size(),
               "robust: weight count must equal scenario count");
  for (const double w : scenario_weights_) {
    PD_CHECK_MSG(w >= 0.0, "robust: negative scenario weight");
  }

  for (auto& s : scenarios) {
    transpose_.push_back(std::make_unique<kernels::DoseEngine>(
        sparse::transpose(s), device, config_.precision));
    forward_.push_back(std::make_unique<kernels::DoseEngine>(
        std::move(s), device, config_.precision));
    transpose_.back()->set_engine_options(config_.engine);
    forward_.back()->set_engine_options(config_.engine);
  }
}

double RobustPlanOptimizer::combine(
    const std::vector<double>& per_scenario) const {
  if (config_.mode == RobustMode::kWorstCase) {
    return *std::max_element(per_scenario.begin(), per_scenario.end());
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < per_scenario.size(); ++k) {
    acc += scenario_weights_[k] * per_scenario[k];
  }
  return acc;
}

RobustPlanOptimizer::Evaluation RobustPlanOptimizer::evaluate(
    const std::vector<double>& x, std::uint64_t* spmv_count) {
  Evaluation ev;
  ev.doses.reserve(forward_.size());
  for (auto& engine : forward_) {
    ev.doses.push_back(engine->compute(x));
    ++*spmv_count;
    ev.per_scenario.push_back(objective_.value(ev.doses.back()));
  }
  ev.robust_value = combine(ev.per_scenario);
  return ev;
}

RobustResult RobustPlanOptimizer::optimize() {
  RobustResult result;
  const std::uint64_t num_spots = forward_.front()->num_spots();
  std::vector<double> x(num_spots, 1.0);

  Evaluation current = evaluate(x, &result.spmv_count);
  result.objective_history.push_back(current.robust_value);

  double step = config_.initial_step;
  for (unsigned it = 0; it < config_.max_iterations; ++it) {
    // Robust (sub)gradient in spot-weight space.
    std::vector<double> gx(num_spots, 0.0);
    if (config_.mode == RobustMode::kWorstCase) {
      // Smoothed minimax: softmax-weighted scenario gradients.  A pure
      // subgradient (gradient of the single argmax scenario) oscillates
      // between active scenarios and converges poorly; the log-sum-exp
      // smoothing is the standard fix and needs the same K transposed
      // SpMVs per iteration.
      const double f_max = *std::max_element(current.per_scenario.begin(),
                                             current.per_scenario.end());
      const double tau = std::max(1e-12, 0.05 * std::fabs(f_max));
      std::vector<double> soft(current.per_scenario.size());
      double norm = 0.0;
      for (std::size_t k = 0; k < soft.size(); ++k) {
        soft[k] = std::exp((current.per_scenario[k] - f_max) / tau);
        norm += soft[k];
      }
      for (std::size_t k = 0; k < soft.size(); ++k) {
        soft[k] /= norm;
        if (soft[k] < 1e-6) {
          continue;  // scenario far from active: skip its transpose product
        }
        const auto gdose = objective_.dose_gradient(current.doses[k]);
        const auto gk = transpose_[k]->compute(gdose);
        ++result.spmv_count;
        for (std::uint64_t i = 0; i < num_spots; ++i) {
          gx[i] += soft[k] * gk[i];
        }
      }
    } else {
      for (std::size_t k = 0; k < forward_.size(); ++k) {
        if (scenario_weights_[k] == 0.0) {
          continue;
        }
        const auto gdose = objective_.dose_gradient(current.doses[k]);
        const auto gk = transpose_[k]->compute(gdose);
        ++result.spmv_count;
        for (std::uint64_t i = 0; i < num_spots; ++i) {
          gx[i] += scenario_weights_[k] * gk[i];
        }
      }
    }

    // Projected backtracking step.
    bool accepted = false;
    for (unsigned bt = 0; bt < config_.max_backtracks; ++bt) {
      std::vector<double> x_new(num_spots);
      for (std::uint64_t i = 0; i < num_spots; ++i) {
        x_new[i] = std::max(0.0, x[i] - step * gx[i]);
      }
      Evaluation trial = evaluate(x_new, &result.spmv_count);
      if (trial.robust_value < current.robust_value) {
        x = std::move(x_new);
        current = std::move(trial);
        accepted = true;
        step *= 1.2;
        break;
      }
      step *= config_.step_shrink;
    }
    ++result.iterations;
    result.objective_history.push_back(current.robust_value);
    if (!accepted) {
      break;
    }
  }

  result.spot_weights = std::move(x);
  result.scenario_doses = std::move(current.doses);
  result.final_scenario_objectives = std::move(current.per_scenario);
  return result;
}

}  // namespace pd::opt
