#include "opt/optimizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>

#include "common/error.hpp"
#include "kernels/tuner.hpp"
#include "sparse/coo.hpp"

namespace pd::opt {

namespace {

/// One stored curvature pair for L-BFGS.
struct CurvaturePair {
  std::vector<double> s;  ///< x_{k+1} - x_k
  std::vector<double> y;  ///< g_{k+1} - g_k
  double rho = 0.0;       ///< 1 / (y^T s)
};

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

/// Two-loop recursion: d = -H g with the implicit L-BFGS inverse Hessian.
std::vector<double> lbfgs_direction(const std::vector<double>& grad,
                                    const std::deque<CurvaturePair>& history) {
  std::vector<double> q = grad;
  std::vector<double> alpha(history.size());
  for (std::size_t i = history.size(); i-- > 0;) {
    alpha[i] = history[i].rho * dot(history[i].s, q);
    for (std::size_t j = 0; j < q.size(); ++j) {
      q[j] -= alpha[i] * history[i].y[j];
    }
  }
  // Initial Hessian scaling gamma = s^T y / y^T y of the newest pair.
  if (!history.empty()) {
    const auto& last = history.back();
    const double yy = dot(last.y, last.y);
    const double gamma = yy > 0.0 ? dot(last.s, last.y) / yy : 1.0;
    for (double& v : q) {
      v *= gamma;
    }
  }
  for (std::size_t i = 0; i < history.size(); ++i) {
    const double beta = history[i].rho * dot(history[i].y, q);
    for (std::size_t j = 0; j < q.size(); ++j) {
      q[j] += history[i].s[j] * (alpha[i] - beta);
    }
  }
  for (double& v : q) {
    v = -v;
  }
  return q;
}

/// Fraction of weights that changed *bitwise* — what compute_delta will
/// actually treat as changed (diff_weights compares bits too).
double changed_fraction(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    changed += std::bit_cast<std::uint64_t>(a[i]) !=
               std::bit_cast<std::uint64_t>(b[i]);
  }
  return a.empty() ? 0.0
                   : static_cast<double>(changed) /
                         static_cast<double>(a.size());
}

}  // namespace

PlanOptimizer::PlanOptimizer(const sparse::CsrF64& D, DoseObjective objective,
                             gpusim::DeviceSpec device, OptimizerConfig config)
    : objective_(std::move(objective)),
      config_(config),
      forward_(sparse::CsrF64(D), device, config.mode,
               kernels::kDefaultVectorTpb, kernels::SpmvFamily::kVector,
               config.backend),
      transpose_(sparse::transpose(D), device, config.mode,
                 kernels::kDefaultVectorTpb, kernels::SpmvFamily::kVector,
                 config.backend) {
  setup_seconds_ = setup_timer_.seconds();
  PD_CHECK_MSG(config_.max_iterations > 0, "optimizer: need >= 1 iteration");
  PD_CHECK_MSG(config_.lbfgs_history > 0, "optimizer: need >= 1 history pair");
  forward_.set_engine_options(config_.engine);
  transpose_.set_engine_options(config_.engine);
  forward_.set_native_threads(config_.native_threads);
  transpose_.set_native_threads(config_.native_threads);
}

OptimizerResult PlanOptimizer::optimize() {
  OptimizerResult result;
  const std::uint64_t num_spots = forward_.num_spots();

  // Start from uniform unit weights (a flat fluence).
  std::vector<double> x(num_spots, 1.0);
  std::vector<double> dose = forward_.compute(x);
  ++result.spmv_count;
  double fx = objective_.value(dose);
  result.objective_history.push_back(fx);

  auto spot_gradient = [&](const std::vector<double>& d) {
    const std::vector<double> gdose = objective_.dose_gradient(d);
    ++result.spmv_count;
    return transpose_.compute(gdose);
  };
  std::vector<double> gx = spot_gradient(dose);

  // Warm-start state: switch to bitwise delta solves once the changed
  // fraction of accepted steps stays below the breakeven threshold.
  double delta_breakeven = config_.delta_changed_frac;
  if (delta_breakeven < 0.0) {
    const sparse::MatrixStats& st = forward_.stats();
    const std::uint64_t value_bytes =
        config_.mode == kernels::DoseEngine::Mode::kHalfDouble
            ? 2
            : (config_.mode == kernels::DoseEngine::Mode::kSingle ? 4 : 8);
    delta_breakeven =
        kernels::delta_threshold(st.csr_bytes(value_bytes, 4), st.nnz,
                                 st.cols)
            .breakeven_changed_frac;
  }
  bool warm = false;
  unsigned stable = 0;

  std::deque<CurvaturePair> history;
  double step = config_.initial_step;
  for (unsigned it = 0; it < config_.max_iterations; ++it) {
    // Projected-gradient stationarity: for x_i = 0 only negative gradients
    // matter.
    double stationarity = 0.0;
    for (std::uint64_t i = 0; i < num_spots; ++i) {
      const double g = (x[i] > 0.0) ? gx[i] : std::min(gx[i], 0.0);
      stationarity = std::max(stationarity, std::fabs(g));
    }
    if (stationarity < config_.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Search direction.
    std::vector<double> direction;
    double trial_step = step;
    if (config_.method == OptimizerMethod::kLbfgs) {
      direction = lbfgs_direction(gx, history);
      // Quasi-Newton directions are already scaled: start from unit step.
      trial_step = 1.0;
      // Safeguard: fall back to steepest descent if the direction fails to
      // descend (can happen right after the projection kinks the geometry).
      if (dot(direction, gx) >= 0.0) {
        direction.assign(gx.begin(), gx.end());
        for (double& v : direction) {
          v = -v;
        }
        trial_step = step;
      }
    } else {
      direction.resize(num_spots);
      for (std::uint64_t i = 0; i < num_spots; ++i) {
        direction[i] = -gx[i];
      }
    }

    // Backtracking line search on the projected step.
    bool accepted = false;
    for (unsigned bt = 0; bt < config_.max_backtracks; ++bt) {
      std::vector<double> x_new(num_spots);
      for (std::uint64_t i = 0; i < num_spots; ++i) {
        x_new[i] = std::max(0.0, x[i] + trial_step * direction[i]);
      }
      // The delta replay is bitwise equal to forward_.compute(x_new), so
      // which branch runs never changes the trajectory — only its cost.
      const double frac = changed_fraction(x, x_new);
      std::vector<double> dose_new;
      if (config_.delta_warm_start && warm && frac < delta_breakeven) {
        dose_new = forward_.compute_delta(dose, x, x_new);
        ++result.delta_spmv_count;
      } else {
        dose_new = forward_.compute(x_new);
      }
      ++result.spmv_count;
      const double f_new = objective_.value(dose_new);
      if (f_new < fx) {
        if (config_.delta_warm_start && !warm) {
          if (frac < delta_breakeven) {
            if (++stable >= config_.delta_stable_iters) {
              warm = true;
              result.warm_start_iteration = it + 1;
            }
          } else {
            stable = 0;
          }
        }
        std::vector<double> gx_new = spot_gradient(dose_new);
        if (config_.method == OptimizerMethod::kLbfgs) {
          CurvaturePair pair;
          pair.s.resize(num_spots);
          pair.y.resize(num_spots);
          for (std::uint64_t i = 0; i < num_spots; ++i) {
            pair.s[i] = x_new[i] - x[i];
            pair.y[i] = gx_new[i] - gx[i];
          }
          const double sy = dot(pair.s, pair.y);
          if (sy > 1e-12) {  // curvature condition: keep H positive definite
            pair.rho = 1.0 / sy;
            history.push_back(std::move(pair));
            if (history.size() > config_.lbfgs_history) {
              history.pop_front();
            }
          }
        }
        x = std::move(x_new);
        dose = std::move(dose_new);
        gx = std::move(gx_new);
        fx = f_new;
        accepted = true;
        if (config_.method == OptimizerMethod::kProjectedGradient) {
          step = trial_step * 1.2;  // cautious growth after success
        }
        break;
      }
      trial_step *= config_.step_shrink;
    }
    ++result.iterations;
    result.objective_history.push_back(fx);
    if (!accepted) {
      break;  // line search failed: we are at numerical stationarity
    }
  }

  result.spot_weights = std::move(x);
  result.dose = std::move(dose);
  result.setup_seconds = setup_seconds_;
  return result;
}

}  // namespace pd::opt
