#pragma once
// Spot-weight optimization: projected gradient descent with backtracking
// line search over non-negative spot weights.
//
// This is the downstream consumer that motivates the paper: each iteration
// computes dose = D·x (the paper's kernel) and gradient = D^T (∂f/∂dose)
// (the same kernel on the transposed matrix), so dose-calculation throughput
// directly bounds planning time.  Both products run through DoseEngine on
// the simulated GPU; the run is deterministic, and because the engine's
// kernel is schedule-independent, re-running a plan reproduces it bitwise.

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "opt/objective.hpp"
#include "sparse/csr.hpp"

namespace pd::opt {

/// Search-direction strategy.  Real treatment-planning systems (RayStation's
/// optimizer included) use quasi-Newton methods; L-BFGS needs far fewer
/// iterations than steepest descent on the ill-conditioned quadratic
/// objectives of planning — each saved iteration is one fewer forward +
/// transposed SpMV pair.
enum class OptimizerMethod {
  kProjectedGradient,
  kLbfgs,  ///< Projected L-BFGS (two-loop recursion + non-negativity projection).
};

struct OptimizerConfig {
  OptimizerMethod method = OptimizerMethod::kProjectedGradient;
  unsigned max_iterations = 50;
  double initial_step = 1.0;
  double step_shrink = 0.5;
  unsigned max_backtracks = 20;
  unsigned lbfgs_history = 8;        ///< Stored (s, y) pairs.
  double gradient_tolerance = 1e-8;  ///< Stop when ||proj grad||_inf is below.
  kernels::DoseEngine::Mode mode = kernels::DoseEngine::Mode::kHalfDouble;
  /// The inner SpMV loop never reads traffic counters, so the engines default
  /// to functional-only execution (no cache simulation) — dose values and the
  /// optimization trajectory are identical to the serial engine's.
  gpusim::EngineOptions engine{gpusim::TraceMode::kFunctionalOnly, 0};
};

struct OptimizerResult {
  std::vector<double> spot_weights;
  std::vector<double> dose;
  std::vector<double> objective_history;  ///< One value per accepted iterate.
  unsigned iterations = 0;
  bool converged = false;
  std::uint64_t spmv_count = 0;  ///< Forward + transposed products performed.
};

class PlanOptimizer {
 public:
  /// D is the dose deposition matrix (rows = voxels, cols = spots); the
  /// optimizer builds forward and transposed engines on `device`.
  PlanOptimizer(const sparse::CsrF64& D, DoseObjective objective,
                gpusim::DeviceSpec device, OptimizerConfig config = {});

  OptimizerResult optimize();

 private:
  DoseObjective objective_;
  OptimizerConfig config_;
  kernels::DoseEngine forward_;
  kernels::DoseEngine transpose_;
};

}  // namespace pd::opt
