#pragma once
// Spot-weight optimization: projected gradient descent with backtracking
// line search over non-negative spot weights.
//
// This is the downstream consumer that motivates the paper: each iteration
// computes dose = D·x (the paper's kernel) and gradient = D^T (∂f/∂dose)
// (the same kernel on the transposed matrix), so dose-calculation throughput
// directly bounds planning time.  Both products run through DoseEngine on
// the simulated GPU; the run is deterministic, and because the engine's
// kernel is schedule-independent, re-running a plan reproduces it bitwise.

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "opt/objective.hpp"
#include "sparse/csr.hpp"

namespace pd::opt {

/// Search-direction strategy.  Real treatment-planning systems (RayStation's
/// optimizer included) use quasi-Newton methods; L-BFGS needs far fewer
/// iterations than steepest descent on the ill-conditioned quadratic
/// objectives of planning — each saved iteration is one fewer forward +
/// transposed SpMV pair.
enum class OptimizerMethod {
  kProjectedGradient,
  kLbfgs,  ///< Projected L-BFGS (two-loop recursion + non-negativity projection).
};

struct OptimizerConfig {
  OptimizerMethod method = OptimizerMethod::kProjectedGradient;
  unsigned max_iterations = 50;
  double initial_step = 1.0;
  double step_shrink = 0.5;
  unsigned max_backtracks = 20;
  unsigned lbfgs_history = 8;        ///< Stored (s, y) pairs.
  double gradient_tolerance = 1e-8;  ///< Stop when ||proj grad||_inf is below.
  kernels::DoseEngine::Mode mode = kernels::DoseEngine::Mode::kHalfDouble;
  /// The inner SpMV loop never reads traffic counters, so the engines default
  /// to functional-only execution (no cache simulation) — dose values and the
  /// optimization trajectory are identical to the serial engine's.
  gpusim::EngineOptions engine{gpusim::TraceMode::kFunctionalOnly, 0};
  /// The inner loop defaults to the native backend: bitwise-identical dose
  /// (so the trajectory is unchanged), much faster wall-clock.  Set kGpusim
  /// to route every product through the simulator instead.
  kernels::DoseEngine::Backend backend = kernels::DoseEngine::Backend::kNative;
  /// Native-backend threads (0 = all hardware threads); any value yields the
  /// same bits.
  unsigned native_threads = 0;
  /// Warm-start delta solves (docs/delta_engine.md): the non-negativity
  /// projection pins spots at zero, so the changed-weight fraction between
  /// iterates shrinks as the active set stabilizes.  Once it has stayed
  /// below the breakeven threshold for `delta_stable_iters` consecutive
  /// accepted iterations, forward products switch from full compute to
  /// bitwise compute_delta — bitwise identical to the full compute, so the
  /// optimization trajectory is unchanged and default-on is safe.  Trials
  /// whose changed fraction exceeds the threshold still run full computes.
  bool delta_warm_start = true;
  /// Changed-fraction breakeven; < 0 derives it from streamed-bytes
  /// arithmetic (kernels::delta_threshold on the stored matrix).
  double delta_changed_frac = -1.0;
  unsigned delta_stable_iters = 2;
};

struct OptimizerResult {
  std::vector<double> spot_weights;
  std::vector<double> dose;
  std::vector<double> objective_history;  ///< One value per accepted iterate.
  unsigned iterations = 0;
  bool converged = false;
  /// Forward + transposed products performed.  Batch-aware: a compute_batch
  /// of K vectors counts K products (one per dose), even though it traverses
  /// the matrix once — keeping throughput numbers comparable across
  /// backends and batching strategies.
  std::uint64_t spmv_count = 0;
  /// Wall-clock seconds spent building engines (matrix copies, transposes,
  /// precision conversions) before the first iteration, plus any engines
  /// built lazily during the run.
  double setup_seconds = 0.0;
  /// Forward products served by bitwise compute_delta after warm start
  /// (a subset of spmv_count; 0 when the warm start never engaged).
  std::uint64_t delta_spmv_count = 0;
  /// 1-based accepted iteration at which delta solves switched on
  /// (0 = never).
  unsigned warm_start_iteration = 0;
};

class PlanOptimizer {
 public:
  /// D is the dose deposition matrix (rows = voxels, cols = spots); the
  /// optimizer builds forward and transposed engines on `device`.
  PlanOptimizer(const sparse::CsrF64& D, DoseObjective objective,
                gpusim::DeviceSpec device, OptimizerConfig config = {});

  OptimizerResult optimize();

 private:
  DoseObjective objective_;
  OptimizerConfig config_;
  WallTimer setup_timer_;  ///< Declared before the engines to time their
                           ///< construction (members initialize in order).
  kernels::DoseEngine forward_;
  kernels::DoseEngine transpose_;
  double setup_seconds_ = 0.0;
};

}  // namespace pd::opt
