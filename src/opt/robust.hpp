#pragma once
// Scenario-based robust treatment-plan optimization.
//
// The paper motivates fast dose calculation with exactly this workload
// (§I-II): "dose distributions from multiple beams, possibly under various
// realizations of uncertainties, must be computed in each iteration", e.g.
// patient-positioning errors.  Robust optimization materializes one dose
// deposition matrix per uncertainty *scenario* and optimizes the expected or
// worst-case objective over them — multiplying the number of SpMV products
// per iteration by the scenario count, which is why SpMV throughput directly
// bounds what robustness a clinic can afford.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "opt/objective.hpp"
#include "sparse/csr.hpp"

namespace pd::opt {

enum class RobustMode {
  kExpectedValue,  ///< minimize the scenario-probability-weighted mean.
  kWorstCase,      ///< minimize the maximum scenario objective (minimax).
};

struct RobustConfig {
  RobustMode mode = RobustMode::kWorstCase;
  unsigned max_iterations = 40;
  double initial_step = 1.0;
  double step_shrink = 0.5;
  unsigned max_backtracks = 20;
  kernels::DoseEngine::Mode precision = kernels::DoseEngine::Mode::kHalfDouble;
  /// See OptimizerConfig::engine — scenario SpMVs never read traffic, so skip
  /// cache simulation by default.
  gpusim::EngineOptions engine{gpusim::TraceMode::kFunctionalOnly, 0};
  /// See OptimizerConfig::backend — native is bitwise identical and faster.
  kernels::DoseEngine::Backend backend = kernels::DoseEngine::Backend::kNative;
  /// Native-backend threads (0 = all hardware threads).
  unsigned native_threads = 0;
};

struct RobustResult {
  std::vector<double> spot_weights;
  /// Final dose per scenario (scenario 0 is conventionally the nominal one).
  std::vector<std::vector<double>> scenario_doses;
  std::vector<double> objective_history;  ///< Robust objective per iterate.
  std::vector<double> final_scenario_objectives;
  unsigned iterations = 0;
  /// Grows ~2·scenarios per iteration.  Batch-aware: the stacked forward
  /// engine computes all K scenario doses in one traversal and counts K.
  std::uint64_t spmv_count = 0;
  /// Engine-construction seconds: the stacked forward engine up front plus
  /// each transpose engine the moment a scenario first becomes active.
  double setup_seconds = 0.0;
};

/// Optimizer over K scenario matrices sharing one spot-weight vector.
class RobustPlanOptimizer {
 public:
  /// `scenarios` are the per-scenario dose deposition matrices (same
  /// columns/spots, possibly different sparsity); `weights` are scenario
  /// probabilities for kExpectedValue (uniform if empty).
  RobustPlanOptimizer(std::vector<sparse::CsrF64> scenarios,
                      DoseObjective objective, gpusim::DeviceSpec device,
                      RobustConfig config = {},
                      std::vector<double> weights = {});

  std::size_t num_scenarios() const { return num_scenarios_; }

  RobustResult optimize();

 private:
  struct Evaluation {
    std::vector<std::vector<double>> doses;
    std::vector<double> per_scenario;
    double robust_value = 0.0;
  };
  Evaluation evaluate(const std::vector<double>& x, std::uint64_t* spmv_count);
  double combine(const std::vector<double>& per_scenario) const;
  /// Lazily build (and cache) scenario k's transpose engine.  Scenarios the
  /// softmax skip never activates never pay their transpose + conversion.
  kernels::DoseEngine& transpose_engine(std::size_t k);

  DoseObjective objective_;
  RobustConfig config_;
  gpusim::DeviceSpec device_;
  std::vector<double> scenario_weights_;
  std::size_t num_scenarios_ = 0;
  std::uint64_t rows_per_scenario_ = 0;
  /// All K scenario matrices stacked row-wise into ONE engine: a single
  /// (batched) traversal yields every scenario dose, and the warp-per-row
  /// kernel makes each row block bitwise identical to a standalone
  /// per-scenario product.  Falls back to per-scenario engines
  /// (forward_split_) when the stacked nnz would overflow 32-bit offsets.
  std::unique_ptr<kernels::DoseEngine> forward_stacked_;
  std::vector<std::unique_ptr<kernels::DoseEngine>> forward_split_;
  /// Transpose engines, built on first use; slot k is null until then.
  std::vector<std::unique_ptr<kernels::DoseEngine>> transpose_;
  /// Sources for lazy transpose builds; slot k is released once built.
  std::vector<sparse::CsrF64> scenario_matrices_;
  double setup_seconds_ = 0.0;
};

}  // namespace pd::opt
