#include "rsformat/rsmatrix.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>

#include "sparse/coo.hpp"

namespace pd::rsformat {

RsMatrix RsMatrix::from_csr(const sparse::CsrF64& csr) {
  csr.validate();
  RsMatrix m;
  m.num_rows_ = csr.num_rows;
  m.num_cols_ = csr.num_cols;

  // Column-oriented traversal: gather (row, value) per column.
  std::vector<std::uint32_t> col_counts(csr.num_cols, 0);
  for (const std::uint32_t c : csr.col_idx) {
    ++col_counts[c];
  }
  std::vector<std::uint64_t> col_start(csr.num_cols + 1, 0);
  for (std::uint64_t c = 0; c < csr.num_cols; ++c) {
    col_start[c + 1] = col_start[c] + col_counts[c];
  }
  struct Entry {
    std::uint32_t row;
    double value;
  };
  std::vector<Entry> entries(csr.nnz());
  {
    std::vector<std::uint64_t> cursor(col_start.begin(), col_start.end() - 1);
    for (std::uint64_t r = 0; r < csr.num_rows; ++r) {
      for (std::uint32_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
        entries[cursor[csr.col_idx[k]]++] =
            Entry{static_cast<std::uint32_t>(r), csr.values[k]};
      }
    }
  }

  m.col_ptr_.assign(csr.num_cols + 1, 0);
  m.col_first_row_.assign(csr.num_cols, 0);
  m.col_scale_.assign(csr.num_cols, 0.0f);

  for (std::uint64_t c = 0; c < csr.num_cols; ++c) {
    const std::uint64_t begin = col_start[c];
    const std::uint64_t end = col_start[c + 1];
    double col_max = 0.0;
    for (std::uint64_t k = begin; k < end; ++k) {
      PD_CHECK_MSG(entries[k].value >= 0.0,
                   "RsMatrix: dose values must be non-negative");
      col_max = std::max(col_max, entries[k].value);
    }
    const double scale = col_max > 0.0 ? col_max / 65535.0 : 1.0;
    m.col_scale_[c] = static_cast<float>(scale);

    std::uint32_t prev_row = 0;
    for (std::uint64_t k = begin; k < end; ++k) {
      const std::uint32_t row = entries[k].row;
      std::uint64_t gap = (k == begin) ? 0 : row - prev_row;
      if (k == begin) {
        m.col_first_row_[c] = row;
      }
      while (gap >= kEscape) {
        m.deltas_.push_back(kEscape);
        m.qvalues_.push_back(0);
        gap -= kEscapeAdvance;
      }
      m.deltas_.push_back(static_cast<std::uint16_t>(gap));
      const double scaled = entries[k].value / scale;
      const auto q = static_cast<std::uint16_t>(
          std::min<long long>(65535, std::llround(scaled)));
      m.qvalues_.push_back(q);
      prev_row = row;
      ++m.nnz_;
    }
    m.col_ptr_[c + 1] = m.deltas_.size();
  }
  return m;
}

sparse::CsrF64 RsMatrix::to_csr() const {
  sparse::CooMatrix<double> coo;
  coo.num_rows = num_rows_;
  coo.num_cols = num_cols_;
  coo.entries.reserve(nnz_);
  for (std::uint32_t c = 0; c < num_cols_; ++c) {
    for_each_in_column(c, [&](std::uint64_t row, double value) {
      coo.entries.push_back(sparse::CooEntry<double>{
          static_cast<std::uint32_t>(row), c, value});
    });
  }
  return sparse::coo_to_csr(coo);
}

namespace {
constexpr std::array<char, 4> kRsMagic = {'P', 'D', 'R', 'S'};
constexpr std::uint32_t kRsVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  PD_CHECK_MSG(static_cast<bool>(is), "rsformat read: truncated stream");
  return v;
}

template <typename T>
void put_vec(std::ostream& os, const std::vector<T>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> get_vec(std::istream& is) {
  const auto n = get<std::uint64_t>(is);
  PD_CHECK_MSG(n <= (std::uint64_t{1} << 33),
               "rsformat read: implausible array length (corrupt file?)");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  PD_CHECK_MSG(static_cast<bool>(is), "rsformat read: truncated array");
  return v;
}
}  // namespace

void RsMatrix::write_binary(std::ostream& os) const {
  os.write(kRsMagic.data(), kRsMagic.size());
  put(os, kRsVersion);
  put<std::uint64_t>(os, num_rows_);
  put<std::uint64_t>(os, num_cols_);
  put<std::uint64_t>(os, nnz_);
  put_vec(os, col_ptr_);
  put_vec(os, col_first_row_);
  put_vec(os, col_scale_);
  put_vec(os, deltas_);
  put_vec(os, qvalues_);
}

void RsMatrix::write_binary_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  PD_CHECK_MSG(os.is_open(), "cannot open for writing: " + path);
  write_binary(os);
}

RsMatrix RsMatrix::read_binary(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  PD_CHECK_MSG(static_cast<bool>(is) && magic == kRsMagic,
               "rsformat read: bad magic (not a PDRS file)");
  PD_CHECK_MSG(get<std::uint32_t>(is) == kRsVersion,
               "rsformat read: unsupported version");
  RsMatrix m;
  m.num_rows_ = get<std::uint64_t>(is);
  m.num_cols_ = get<std::uint64_t>(is);
  m.nnz_ = get<std::uint64_t>(is);
  m.col_ptr_ = get_vec<std::uint64_t>(is);
  m.col_first_row_ = get_vec<std::uint32_t>(is);
  m.col_scale_ = get_vec<float>(is);
  m.deltas_ = get_vec<std::uint16_t>(is);
  m.qvalues_ = get_vec<std::uint16_t>(is);
  // Structural consistency of the container.
  PD_CHECK_MSG(m.col_ptr_.size() == m.num_cols_ + 1,
               "rsformat read: col_ptr size mismatch");
  PD_CHECK_MSG(m.col_first_row_.size() == m.num_cols_,
               "rsformat read: first-row size mismatch");
  PD_CHECK_MSG(m.col_scale_.size() == m.num_cols_,
               "rsformat read: scale size mismatch");
  PD_CHECK_MSG(m.deltas_.size() == m.qvalues_.size(),
               "rsformat read: stream size mismatch");
  PD_CHECK_MSG(!m.col_ptr_.empty() && m.col_ptr_.front() == 0 &&
                   m.col_ptr_.back() == m.deltas_.size(),
               "rsformat read: col_ptr inconsistent with streams");
  // Decoded-content lint: walk every column's delta stream exactly the way
  // the kernels decode it and verify each decoded row index stays inside
  // the matrix, col_ptr is monotone, and the entry count matches the nnz
  // header.  The GPU baseline scatters to these decoded rows without
  // per-access bounds checks, so a corrupt stream must die here.
  std::uint64_t decoded_entries = 0;
  for (std::uint64_t c = 0; c < m.num_cols_; ++c) {
    PD_CHECK_MSG(m.col_ptr_[c] <= m.col_ptr_[c + 1],
                 "rsformat read: col_ptr not monotone");
    std::uint64_t row = m.col_first_row_[c];
    for (std::uint64_t k = m.col_ptr_[c]; k < m.col_ptr_[c + 1]; ++k) {
      if (m.deltas_[k] == kEscape) {
        row += kEscapeAdvance;
        continue;
      }
      row += m.deltas_[k];
      PD_CHECK_MSG(row < m.num_rows_,
                   "rsformat read: decoded row index exceeds num_rows "
                   "(corrupt delta stream)");
      ++decoded_entries;
    }
  }
  PD_CHECK_MSG(decoded_entries == m.nnz_,
               "rsformat read: decoded entry count disagrees with nnz header");
  return m;
}

RsMatrix RsMatrix::read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PD_CHECK_MSG(is.is_open(), "cannot open for reading: " + path);
  return read_binary(is);
}

std::uint64_t RsMatrix::bytes() const {
  return deltas_.size() * sizeof(std::uint16_t) +
         qvalues_.size() * sizeof(std::uint16_t) +
         col_ptr_.size() * sizeof(std::uint64_t) +
         col_first_row_.size() * sizeof(std::uint32_t) +
         col_scale_.size() * sizeof(float);
}

}  // namespace pd::rsformat
