#include "rsformat/cpu_engine.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace pd::rsformat {

namespace {

/// Accumulate columns [col_begin, col_end) into `scratch`.
void accumulate_columns(const RsMatrix& m, std::span<const double> x,
                        std::span<double> scratch, std::uint32_t col_begin,
                        std::uint32_t col_end) {
  for (std::uint32_t c = col_begin; c < col_end; ++c) {
    const double weight = x[c];
    if (weight == 0.0) {
      continue;  // unweighted spot deposits nothing
    }
    m.for_each_in_column(c, [&](std::uint64_t row, double value) {
      scratch[row] += value * weight;
    });
  }
}

}  // namespace

void cpu_compute_dose_serial(const RsMatrix& matrix, std::span<const double> x,
                             std::span<double> y) {
  PD_CHECK_MSG(x.size() == matrix.num_cols(), "cpu dose: x size mismatch");
  PD_CHECK_MSG(y.size() == matrix.num_rows(), "cpu dose: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  accumulate_columns(matrix, x, y, 0,
                     static_cast<std::uint32_t>(matrix.num_cols()));
}

void cpu_compute_dose(const RsMatrix& matrix, std::span<const double> x,
                      std::span<double> y, unsigned num_threads) {
  PD_CHECK_MSG(num_threads > 0, "cpu dose: need at least one thread");
  PD_CHECK_MSG(x.size() == matrix.num_cols(), "cpu dose: x size mismatch");
  PD_CHECK_MSG(y.size() == matrix.num_rows(), "cpu dose: y size mismatch");
  if (num_threads == 1) {
    cpu_compute_dose_serial(matrix, x, y);
    return;
  }

  const auto cols = static_cast<std::uint32_t>(matrix.num_cols());
  num_threads = std::min<unsigned>(num_threads, std::max<std::uint32_t>(cols, 1));

  // One private scratch dose array per thread: no shared writes, hence no
  // races and no atomics — the design the paper's GPU Baseline has to give
  // up (and with it, bitwise reproducibility).
  std::vector<std::vector<double>> scratch(
      num_threads, std::vector<double>(matrix.num_rows(), 0.0));

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const std::uint32_t chunk = (cols + num_threads - 1) / num_threads;
  for (unsigned t = 0; t < num_threads; ++t) {
    const std::uint32_t begin = std::min(cols, t * chunk);
    const std::uint32_t end = std::min(cols, begin + chunk);
    workers.emplace_back([&, t, begin, end] {
      accumulate_columns(matrix, x, scratch[t], begin, end);
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  // Deterministic reduction in ascending thread order.
  std::fill(y.begin(), y.end(), 0.0);
  for (unsigned t = 0; t < num_threads; ++t) {
    for (std::size_t r = 0; r < y.size(); ++r) {
      y[r] += scratch[t][r];
    }
  }
}

}  // namespace pd::rsformat
