#pragma once
// "RayStation-like" custom compressed dose-matrix format.
//
// The paper's input matrices come from RayStation's proprietary compressed
// storage, "developed for CPUs at a time when memory was scarce", with
// 16 bits per matrix entry; the paper converts it to CSR for the GPU kernels
// and ports the CPU algorithm that runs directly on the custom format.
// This class is our concrete stand-in with the same salient properties:
//
//  * column-oriented — one compressed record per *spot* (the MC engine
//    produces dose per spot, i.e. per matrix column),
//  * 16-bit fixed-point values with one float scale per column,
//  * delta-encoded row indices (uint16 gaps with an escape code for larger
//    jumps), exploiting the spatial clustering of a spot's deposits,
//  * lossy: quantization error is bounded by scale/2 = col_max/131070,
//    mirroring the half-precision storage error of the GPU path.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pd::rsformat {

class RsMatrix {
 public:
  /// Escape code in the delta stream: advance kEscapeAdvance rows, no entry.
  static constexpr std::uint16_t kEscape = 0xffff;
  static constexpr std::uint32_t kEscapeAdvance = 0xfffe;

  RsMatrix() = default;

  /// Compress a CSR matrix (values must be non-negative, as doses are).
  static RsMatrix from_csr(const sparse::CsrF64& csr);

  /// Decompress to CSR (the paper's RayStation-to-CSR conversion step).
  sparse::CsrF64 to_csr() const;

  std::uint64_t num_rows() const { return num_rows_; }
  std::uint64_t num_cols() const { return num_cols_; }
  std::uint64_t nnz() const { return nnz_; }

  /// Stored bytes (entry streams + per-column headers).
  std::uint64_t bytes() const;

  /// Decode column `col`, invoking fn(row, value) in ascending row order.
  template <typename Fn>
  void for_each_in_column(std::uint32_t col, Fn&& fn) const {
    PD_CHECK_MSG(col < num_cols_, "RsMatrix: column out of range");
    std::uint64_t row = col_first_row_[col];
    const double scale = col_scale_[col];
    // The first entry is stored with delta 0 (relative to col_first_row);
    // escapes advance the cursor and the following delta carries the rest of
    // the gap, so decoding is uniform.
    for (std::uint64_t k = col_ptr_[col]; k < col_ptr_[col + 1]; ++k) {
      const std::uint16_t delta = deltas_[k];
      if (delta == kEscape) {
        row += kEscapeAdvance;
        continue;
      }
      row += delta;
      fn(row, static_cast<double>(qvalues_[k]) * scale);
    }
  }

  // Raw streams — exposed for the GPU Baseline kernel, which (like the
  // paper's port) runs directly on the compressed representation.
  const std::vector<std::uint64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::uint32_t>& col_first_row() const { return col_first_row_; }
  const std::vector<float>& col_scale() const { return col_scale_; }
  const std::vector<std::uint16_t>& deltas() const { return deltas_; }
  const std::vector<std::uint16_t>& qvalues() const { return qvalues_; }

  /// Largest quantization error this matrix can have introduced, per column.
  double max_abs_error(std::uint32_t col) const {
    return static_cast<double>(col_scale_[col]) * 0.5;
  }

  /// Binary serialization ("PDRS" container) — the clinical engine caches
  /// compressed matrices between planning sessions.
  void write_binary(std::ostream& os) const;
  void write_binary_file(const std::string& path) const;
  static RsMatrix read_binary(std::istream& is);
  static RsMatrix read_binary_file(const std::string& path);

 private:
  std::uint64_t num_rows_ = 0;
  std::uint64_t num_cols_ = 0;
  std::uint64_t nnz_ = 0;  ///< real entries (escapes excluded)
  std::vector<std::uint64_t> col_ptr_;
  std::vector<std::uint32_t> col_first_row_;
  std::vector<float> col_scale_;
  std::vector<std::uint16_t> deltas_;
  std::vector<std::uint16_t> qvalues_;
};

}  // namespace pd::rsformat
