#pragma once
// The RayStation-style CPU dose engine.
//
// This is the algorithm the paper ports to GPU as the "GPU Baseline": the
// dose vector y = D·x is accumulated column-by-column (one spot at a time),
// parallelized over columns, with *per-thread scratch dose arrays* so that
// concurrent threads never write the same voxel — the race-free design the
// paper credits for the CPU code's bitwise reproducibility (§IV).  The
// scratch arrays are combined at the end in fixed thread order, so for a
// given (matrix, x, num_threads) the result is bitwise identical on every
// run.

#include <cstdint>
#include <span>

#include "rsformat/rsmatrix.hpp"

namespace pd::rsformat {

/// Compute y = D·x on the compressed matrix with `num_threads` workers, each
/// owning a private scratch dose array; deterministic reduction.
void cpu_compute_dose(const RsMatrix& matrix, std::span<const double> x,
                      std::span<double> y, unsigned num_threads = 4);

/// Sequential single-scratch variant (reference and num_threads==1 path).
void cpu_compute_dose_serial(const RsMatrix& matrix, std::span<const double> x,
                             std::span<double> y);

}  // namespace pd::rsformat
