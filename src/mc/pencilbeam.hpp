#pragma once
// Pencil-beam transport: deposits the dose of one spot into patient voxels.
//
// Each spot is ray-marched through the phantom.  At every step the analytic
// Bragg depth dose (evaluated at the accumulated water-equivalent depth) is
// spread laterally with a depth-broadened Gaussian (multiple Coulomb
// scattering).  Monte Carlo statistical noise is then applied per deposit,
// including the paper's §II-A observation that MC noise *adds spurious tiny
// non-zeros* to the matrix: a halo of near-zero deposits around the physical
// beam envelope.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mc/bragg.hpp"
#include "phantom/beam.hpp"
#include "phantom/phantom.hpp"

namespace pd::mc {

struct TransportConfig {
  double step_mm = 2.0;                ///< Ray-marching step.
  double lateral_sigma0_mm = 3.0;      ///< Spot size at the patient surface.
  double lateral_growth_mm_per_cm = 0.45;  ///< MCS broadening per cm depth.
  double lateral_cutoff_sigmas = 2.5;  ///< Deposit radius in sigmas.
  double mc_noise_rel = 0.02;          ///< Relative stddev of MC noise.
  double halo_prob = 0.10;             ///< Spurious-deposit probability in the halo.
  double halo_rel = 1e-4;              ///< Spurious deposit magnitude (rel. to max).
  double prune_rel = 1e-6;             ///< Drop deposits below rel × column max.
};

/// One voxel's share of a spot's dose.
struct Deposit {
  std::uint64_t voxel = 0;
  double dose = 0.0;
};

/// Compute all deposits of `spot` (one matrix column).  Deterministic in
/// (inputs, rng state); deposits are returned sorted by voxel index.
std::vector<Deposit> transport_spot(const phantom::Phantom& phantom,
                                    const phantom::BeamFrame& frame,
                                    const phantom::Spot& spot,
                                    const BraggModel& bragg,
                                    const TransportConfig& config, Rng& rng);

}  // namespace pd::mc
