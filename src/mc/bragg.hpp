#pragma once
// Depth–dose model for proton pencil beams.
//
// An analytic Bragg-curve approximation (entrance plateau + straggling-
// broadened peak + sharp distal falloff) substitutes for RayStation's full
// Monte Carlo particle transport.  The dose deposition matrices only need
// the *qualitative* Bragg behaviour — dose all along the entrance channel
// (long rows in shallow voxels), peak near the prescribed range, nothing
// beyond — to produce the matrix structure of Table I / Figure 2.

namespace pd::mc {

/// Parameters of the analytic Bragg model.
struct BraggModel {
  double plateau_entrance = 0.35;  ///< Entrance dose relative to unit plateau scale.
  double plateau_rise = 0.45;      ///< Quadratic rise toward the peak region.
  double peak_amplitude = 3.2;     ///< Peak height over the plateau scale.
  double straggling_coeff = 0.012; ///< sigma_range = coeff * R^straggling_power.
  double straggling_power = 0.935;

  /// Range-straggling width (cm) for a beam of range `range_cm`.
  double sigma_range_cm(double range_cm) const;

  /// Depth dose (arbitrary units ~ Gy·cm²/primary) at water-equivalent depth
  /// `depth_cm` for a beam with nominal range `range_cm`.
  double depth_dose(double depth_cm, double range_cm) const;

  /// Depth beyond which the dose is numerically zero (peak + 3 sigma).
  double max_depth_cm(double range_cm) const;
};

}  // namespace pd::mc
