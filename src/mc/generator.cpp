#include "mc/generator.hpp"

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pd::mc {

GeneratedBeam generate_dose_matrix(const phantom::Phantom& phantom,
                                   double gantry_angle_deg,
                                   const phantom::BeamConfig& beam_config,
                                   const TransportConfig& transport_config,
                                   const BraggModel& bragg, std::uint64_t seed,
                                   const phantom::Vec3& delivery_shift_mm) {
  GeneratedBeam out;
  out.gantry_angle_deg = gantry_angle_deg;

  phantom::BeamConfig cfg = beam_config;
  cfg.gantry_angle_deg = gantry_angle_deg;
  // The spot plan is always made for the *nominal* geometry; only the
  // delivery frame is displaced by the setup error.
  const phantom::BeamFrame nominal =
      phantom::make_beam_frame(phantom, gantry_angle_deg);
  out.spots = phantom::generate_spots(phantom, nominal, cfg);
  phantom::BeamFrame frame = nominal;
  frame.isocenter = frame.isocenter + delivery_shift_mm;
  PD_CHECK_MSG(!out.spots.empty(), "generate_dose_matrix: no spots generated");
  PD_CHECK_MSG(out.spots.size() < (std::uint64_t{1} << 32),
               "generate_dose_matrix: too many spots for 32-bit columns");

  sparse::CooMatrix<double> coo;
  coo.num_rows = phantom.grid().num_voxels();
  coo.num_cols = out.spots.size();

  Rng master(seed);
  for (std::uint32_t col = 0; col < out.spots.size(); ++col) {
    Rng spot_rng = master.fork();
    const std::vector<Deposit> deposits = transport_spot(
        phantom, frame, out.spots[col], bragg, transport_config, spot_rng);
    for (const Deposit& d : deposits) {
      coo.entries.push_back(sparse::CooEntry<double>{
          static_cast<std::uint32_t>(d.voxel), col, d.dose});
    }
  }

  out.matrix = sparse::coo_to_csr(coo);
  return out;
}

}  // namespace pd::mc
