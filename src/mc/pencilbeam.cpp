#include "mc/pencilbeam.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace pd::mc {

using phantom::BeamFrame;
using phantom::Phantom;
using phantom::Spot;
using phantom::Vec3;
using phantom::VoxelGrid;
using phantom::VoxelIndex;

std::vector<Deposit> transport_spot(const Phantom& phantom,
                                    const BeamFrame& frame, const Spot& spot,
                                    const BraggModel& bragg,
                                    const TransportConfig& config, Rng& rng) {
  PD_CHECK_MSG(config.step_mm > 0.0, "transport: step must be positive");
  const VoxelGrid& g = phantom.grid();
  const double range_cm = phantom::proton_range_cm(spot.energy_mev);
  const double max_depth_cm = bragg.max_depth_cm(range_cm);

  // Start well outside the grid on the beam axis through (u, v) and march
  // forward; water-equivalent depth starts accumulating at the first voxel
  // with material.
  const double diag_mm =
      std::sqrt(static_cast<double>(g.nx() * g.nx() + g.ny() * g.ny() +
                                    g.nz() * g.nz())) *
      g.spacing();
  Vec3 cursor = frame.unproject(spot.u_mm, spot.v_mm, -0.75 * diag_mm);
  const Vec3 step_vec = frame.direction * config.step_mm;
  const auto max_steps = static_cast<std::uint64_t>(2.0 * diag_mm / config.step_mm);

  std::unordered_map<std::uint64_t, double> dose_map;
  double wed_cm = 0.0;
  bool entered = false;

  for (std::uint64_t s = 0; s < max_steps && wed_cm < max_depth_cm; ++s) {
    cursor = cursor + step_vec;
    const VoxelIndex center = g.nearest_voxel(cursor);
    if (!g.contains(center)) {
      if (entered) {
        break;  // exited the far side
      }
      continue;
    }
    entered = true;
    const double sp = phantom.stopping_power(g.linear_index(center));
    wed_cm += sp * config.step_mm / 10.0;
    if (sp <= 0.0) {
      continue;  // air gap inside the grid: no deposit, no depth gained
    }

    const double dd = bragg.depth_dose(wed_cm, range_cm);
    if (dd <= 0.0) {
      continue;
    }

    // Lateral spread: depth-broadened Gaussian, never narrower than the
    // marching step so coarse grids still see a connected beam.
    const double sigma_mm = std::max(
        config.lateral_sigma0_mm + config.lateral_growth_mm_per_cm * wed_cm,
        0.8 * config.step_mm);
    const double cutoff_mm = config.lateral_cutoff_sigmas * sigma_mm;
    const auto reach = static_cast<std::int64_t>(cutoff_mm / g.spacing()) + 1;
    const double inv_two_sigma2 = 1.0 / (2.0 * sigma_mm * sigma_mm);

    for (std::int64_t du = -reach; du <= reach; ++du) {
      for (std::int64_t dv = -reach; dv <= reach; ++dv) {
        const double off_u = static_cast<double>(du) * g.spacing();
        const double off_v = static_cast<double>(dv) * g.spacing();
        const double r2 = off_u * off_u + off_v * off_v;
        if (r2 > cutoff_mm * cutoff_mm) {
          continue;
        }
        const Vec3 p = cursor + frame.u_axis * off_u + frame.v_axis * off_v;
        const VoxelIndex v = g.nearest_voxel(p);
        if (!g.contains(v)) {
          continue;
        }
        const double w = std::exp(-r2 * inv_two_sigma2);
        dose_map[g.linear_index(v)] += dd * w * config.step_mm / 10.0;
      }
    }
  }

  if (dose_map.empty()) {
    return {};
  }

  double max_dose = 0.0;
  for (const auto& [voxel, dose] : dose_map) {
    max_dose = std::max(max_dose, dose);
  }

  // Apply MC noise, inject halo noise, prune, and sort.  Iterate in sorted
  // voxel order so the random stream is independent of hash-map layout.
  std::vector<Deposit> deposits;
  deposits.reserve(dose_map.size());
  for (const auto& [voxel, dose] : dose_map) {
    deposits.push_back(Deposit{voxel, dose});
  }
  std::sort(deposits.begin(), deposits.end(),
            [](const Deposit& a, const Deposit& b) { return a.voxel < b.voxel; });

  std::vector<Deposit> out;
  out.reserve(deposits.size());
  const double prune_abs = config.prune_rel * max_dose;
  for (Deposit d : deposits) {
    d.dose *= std::max(0.0, 1.0 + rng.normal(0.0, config.mc_noise_rel));
    // Spurious MC-noise non-zeros: neighbouring voxels occasionally receive
    // a tiny deposit (the paper's "artificial increase of the non-zero
    // values" from MC noise).
    if (rng.uniform() < config.halo_prob) {
      const std::uint64_t neighbour = d.voxel + 1;
      if (neighbour < phantom.grid().num_voxels()) {
        out.push_back(Deposit{neighbour,
                              config.halo_rel * max_dose * rng.uniform(0.1, 1.0)});
      }
    }
    if (d.dose > prune_abs) {
      out.push_back(d);
    }
  }

  // Merge duplicates introduced by the halo (sorted merge).
  std::sort(out.begin(), out.end(),
            [](const Deposit& a, const Deposit& b) { return a.voxel < b.voxel; });
  std::vector<Deposit> merged;
  merged.reserve(out.size());
  for (const Deposit& d : out) {
    if (!merged.empty() && merged.back().voxel == d.voxel) {
      merged.back().dose += d.dose;
    } else {
      merged.push_back(d);
    }
  }
  return merged;
}

}  // namespace pd::mc
