#pragma once
// Dose-deposition-matrix generator: phantom + beam -> CSR matrix.
//
// Stands in for "export from RayStation after the Monte Carlo dose engine"
// (paper §IV): each spot is transported through the phantom and its deposits
// become one *column* of the matrix (rows = dose-grid voxels).  The result is
// a double-precision CSR matrix which callers quantize to half (rsformat /
// convert_values) exactly as the paper converts RayStation's export to CSR.

#include <cstdint>
#include <vector>

#include "mc/pencilbeam.hpp"
#include "phantom/beam.hpp"
#include "phantom/phantom.hpp"
#include "sparse/csr.hpp"

namespace pd::mc {

struct GeneratedBeam {
  sparse::CsrF64 matrix;            ///< rows = voxels, cols = spots.
  std::vector<phantom::Spot> spots; ///< Column definitions.
  double gantry_angle_deg = 0.0;
};

/// Generate the dose deposition matrix for one beam.  Deterministic in
/// (phantom, angle, configs, seed); per-spot RNG streams are forked so the
/// result does not depend on evaluation order.
///
/// `delivery_shift_mm` models a patient setup error: the spot plan is made
/// for the nominal geometry, but the dose is delivered with the beam frame
/// displaced by this vector relative to the patient — the uncertainty
/// realization that robust optimization (paper §II) plans against.  The
/// default (zero) is the nominal scenario.
GeneratedBeam generate_dose_matrix(const phantom::Phantom& phantom,
                                   double gantry_angle_deg,
                                   const phantom::BeamConfig& beam_config,
                                   const TransportConfig& transport_config,
                                   const BraggModel& bragg, std::uint64_t seed,
                                   const phantom::Vec3& delivery_shift_mm = {});

}  // namespace pd::mc
