#include "mc/bragg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pd::mc {

double BraggModel::sigma_range_cm(double range_cm) const {
  PD_CHECK_MSG(range_cm > 0.0, "sigma_range_cm: non-positive range");
  return straggling_coeff * std::pow(range_cm, straggling_power);
}

double BraggModel::depth_dose(double depth_cm, double range_cm) const {
  PD_CHECK_MSG(range_cm > 0.0, "depth_dose: non-positive range");
  if (depth_cm < 0.0) {
    return 0.0;
  }
  const double sigma = sigma_range_cm(range_cm);
  if (depth_cm > range_cm + 3.0 * sigma) {
    return 0.0;
  }
  // Entrance plateau rising gently toward the peak; truncated past the range
  // by the same erf-style falloff as the peak.
  const double rel = std::min(depth_cm / range_cm, 1.0);
  double plateau = plateau_entrance + plateau_rise * rel * rel;
  if (depth_cm > range_cm) {
    plateau *= std::exp(-0.5 * (depth_cm - range_cm) * (depth_cm - range_cm) /
                        (sigma * sigma));
  }
  // Straggling-broadened Bragg peak centred slightly proximal of the range.
  const double peak_center = range_cm - 0.5 * sigma;
  const double d = depth_cm - peak_center;
  const double peak = peak_amplitude * std::exp(-0.5 * d * d / (sigma * sigma));
  return plateau + peak;
}

double BraggModel::max_depth_cm(double range_cm) const {
  return range_cm + 3.0 * sigma_range_cm(range_cm);
}

}  // namespace pd::mc
