#pragma once
// Photon-beam dose model (paper §II-A: photon and proton treatments produce
// dose deposition matrices "with different characteristics because the dose
// deposition and physics differ").
//
// Megavoltage photons have no Bragg peak: dose builds up over the first
// ~1.5 cm (electron equilibrium) and then decays exponentially through the
// whole patient.  A photon beam therefore needs no energy layers — one
// beamlet per lateral position — and every beamlet deposits along its entire
// path, giving matrices that are *denser* with *longer columns* than proton
// matrices on the same geometry.  This module exists to demonstrate exactly
// that structural contrast (tests assert it).

#include <cstdint>

#include "mc/generator.hpp"
#include "mc/pencilbeam.hpp"
#include "phantom/beam.hpp"
#include "phantom/phantom.hpp"

namespace pd::mc {

/// Analytic MV-photon depth-dose: build-up to d_max, exponential beyond.
struct PhotonModel {
  double buildup_depth_cm = 1.5;      ///< d_max (~6 MV).
  double attenuation_per_cm = 0.046;  ///< Effective linear attenuation.

  /// Relative dose at water-equivalent depth `depth_cm` (1.0 at d_max).
  double depth_dose(double depth_cm) const;
};

/// One beamlet (matrix column) per lateral BEV cell covering the target
/// outline plus margin; `layer` is always 0 and `energy_mev` holds the
/// nominal accelerating potential (unused by the transport).
std::vector<phantom::Spot> generate_photon_beamlets(
    const phantom::Phantom& phantom, const phantom::BeamFrame& frame,
    const phantom::BeamConfig& config);

/// Photon analogue of generate_dose_matrix: columns are fluence beamlets.
GeneratedBeam generate_photon_dose_matrix(
    const phantom::Phantom& phantom, double gantry_angle_deg,
    const phantom::BeamConfig& beam_config,
    const TransportConfig& transport_config, const PhotonModel& model,
    std::uint64_t seed);

}  // namespace pd::mc
