#include "mc/photon.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pd::mc {

using phantom::BeamConfig;
using phantom::BeamFrame;
using phantom::Phantom;
using phantom::Spot;
using phantom::Vec3;
using phantom::VoxelGrid;
using phantom::VoxelIndex;

double PhotonModel::depth_dose(double depth_cm) const {
  PD_CHECK_MSG(buildup_depth_cm > 0.0, "photon model: d_max must be positive");
  if (depth_cm <= 0.0) {
    return 0.0;
  }
  // Electron-equilibrium build-up, then exponential attenuation normalized
  // to 1.0 at d_max.
  const double buildup = 1.0 - std::exp(-3.5 * depth_cm / buildup_depth_cm);
  const double decay =
      std::exp(-attenuation_per_cm * std::max(0.0, depth_cm - buildup_depth_cm));
  const double norm = 1.0 - std::exp(-3.5);
  return buildup * decay / norm;
}

std::vector<Spot> generate_photon_beamlets(const Phantom& phantom,
                                           const BeamFrame& frame,
                                           const BeamConfig& config) {
  PD_CHECK_MSG(config.spot_spacing_mm > 0.0, "beamlet spacing must be positive");
  // Lateral cells covered by the target projection plus margin — the same
  // outline logic as proton spots, but a single fluence beamlet per cell.
  std::map<std::pair<std::int64_t, std::int64_t>, bool> cells;
  const VoxelGrid& g = phantom.grid();
  for (std::uint64_t vox = 0; vox < g.num_voxels(); ++vox) {
    if (phantom.roi(vox) != phantom::Roi::kTarget) {
      continue;
    }
    double u = 0.0, v = 0.0;
    frame.project(g.voxel_center(g.from_linear(vox)), u, v);
    const auto reach = static_cast<std::int64_t>(config.lateral_margin_mm /
                                                 config.spot_spacing_mm);
    const auto cu =
        static_cast<std::int64_t>(std::llround(u / config.spot_spacing_mm));
    const auto cv =
        static_cast<std::int64_t>(std::llround(v / config.spot_spacing_mm));
    for (std::int64_t du = -reach; du <= reach; ++du) {
      for (std::int64_t dv = -reach; dv <= reach; ++dv) {
        cells[{cu + du, cv + dv}] = true;
      }
    }
  }
  PD_CHECK_MSG(!cells.empty(), "photon beamlets: phantom has no target voxels");

  std::vector<Spot> beamlets;
  beamlets.reserve(cells.size());
  for (const auto& [cell, _] : cells) {
    Spot s;
    s.u_mm = static_cast<double>(cell.first) * config.spot_spacing_mm;
    s.v_mm = static_cast<double>(cell.second) * config.spot_spacing_mm;
    s.energy_mev = 6.0;  // nominal MV
    s.layer = 0;
    beamlets.push_back(s);
  }
  return beamlets;
}

namespace {

/// March one photon beamlet through the phantom, depositing build-up +
/// attenuated dose with lateral Gaussian penumbra.  Mirrors transport_spot
/// but with no range cutoff: photons exit through the far side.
std::vector<Deposit> transport_beamlet(const Phantom& phantom,
                                       const BeamFrame& frame,
                                       const Spot& beamlet,
                                       const PhotonModel& model,
                                       const TransportConfig& config,
                                       Rng& rng) {
  PD_CHECK_MSG(config.step_mm > 0.0, "photon transport: step must be positive");
  const VoxelGrid& g = phantom.grid();
  const double diag_mm =
      std::sqrt(static_cast<double>(g.nx() * g.nx() + g.ny() * g.ny() +
                                    g.nz() * g.nz())) *
      g.spacing();
  Vec3 cursor = frame.unproject(beamlet.u_mm, beamlet.v_mm, -0.75 * diag_mm);
  const Vec3 step_vec = frame.direction * config.step_mm;
  const auto max_steps =
      static_cast<std::uint64_t>(2.0 * diag_mm / config.step_mm);

  std::unordered_map<std::uint64_t, double> dose_map;
  double wed_cm = 0.0;
  bool entered = false;
  for (std::uint64_t s = 0; s < max_steps; ++s) {
    cursor = cursor + step_vec;
    const VoxelIndex center = g.nearest_voxel(cursor);
    if (!g.contains(center)) {
      if (entered) {
        break;
      }
      continue;
    }
    entered = true;
    const double sp = phantom.stopping_power(g.linear_index(center));
    wed_cm += sp * config.step_mm / 10.0;
    if (sp <= 0.0) {
      continue;
    }
    const double dd = model.depth_dose(wed_cm);
    if (dd <= 0.0) {
      continue;
    }
    // Photon penumbra: roughly constant width (source size + scatter).
    const double sigma_mm =
        std::max(config.lateral_sigma0_mm, 0.8 * config.step_mm);
    const double cutoff_mm = config.lateral_cutoff_sigmas * sigma_mm;
    const auto reach = static_cast<std::int64_t>(cutoff_mm / g.spacing()) + 1;
    const double inv_two_sigma2 = 1.0 / (2.0 * sigma_mm * sigma_mm);
    for (std::int64_t du = -reach; du <= reach; ++du) {
      for (std::int64_t dv = -reach; dv <= reach; ++dv) {
        const double off_u = static_cast<double>(du) * g.spacing();
        const double off_v = static_cast<double>(dv) * g.spacing();
        const double r2 = off_u * off_u + off_v * off_v;
        if (r2 > cutoff_mm * cutoff_mm) {
          continue;
        }
        const Vec3 p = cursor + frame.u_axis * off_u + frame.v_axis * off_v;
        const VoxelIndex v = g.nearest_voxel(p);
        if (!g.contains(v)) {
          continue;
        }
        dose_map[g.linear_index(v)] +=
            dd * std::exp(-r2 * inv_two_sigma2) * config.step_mm / 10.0;
      }
    }
  }

  std::vector<Deposit> deposits;
  deposits.reserve(dose_map.size());
  double max_dose = 0.0;
  for (const auto& [voxel, dose] : dose_map) {
    deposits.push_back(Deposit{voxel, dose});
    max_dose = std::max(max_dose, dose);
  }
  std::sort(deposits.begin(), deposits.end(),
            [](const Deposit& a, const Deposit& b) { return a.voxel < b.voxel; });
  std::vector<Deposit> out;
  out.reserve(deposits.size());
  const double prune_abs = config.prune_rel * max_dose;
  for (Deposit d : deposits) {
    d.dose *= std::max(0.0, 1.0 + rng.normal(0.0, config.mc_noise_rel));
    if (d.dose > prune_abs) {
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace

GeneratedBeam generate_photon_dose_matrix(const Phantom& phantom,
                                          double gantry_angle_deg,
                                          const BeamConfig& beam_config,
                                          const TransportConfig& transport_config,
                                          const PhotonModel& model,
                                          std::uint64_t seed) {
  GeneratedBeam out;
  out.gantry_angle_deg = gantry_angle_deg;
  const BeamFrame frame = phantom::make_beam_frame(phantom, gantry_angle_deg);
  out.spots = generate_photon_beamlets(phantom, frame, beam_config);
  PD_CHECK_MSG(out.spots.size() < (std::uint64_t{1} << 32),
               "too many beamlets for 32-bit columns");

  sparse::CooMatrix<double> coo;
  coo.num_rows = phantom.grid().num_voxels();
  coo.num_cols = out.spots.size();
  Rng master(seed);
  for (std::uint32_t col = 0; col < out.spots.size(); ++col) {
    Rng beamlet_rng = master.fork();
    for (const Deposit& d :
         transport_beamlet(phantom, frame, out.spots[col], model,
                           transport_config, beamlet_rng)) {
      coo.entries.push_back(sparse::CooEntry<double>{
          static_cast<std::uint32_t>(d.voxel), col, d.dose});
    }
  }
  out.matrix = sparse::coo_to_csr(coo);
  return out;
}

}  // namespace pd::mc
