// Ablation A — 16-bit column indices (the paper's §V "future work"
// optimization): the analysis there shows 4-byte indices contribute 4·nnz of
// the 6·nnz streaming bytes, so narrowing them should raise operational
// intensity by ~1.5x and performance accordingly.  The paper notes it only
// applies where num_cols <= 65536 (prostate yes, full-scale liver no); the
// scaled cases here all fit, and the bench reports the paper-scale
// applicability alongside.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_colindex_width",
      "Paper §V future work: 16-bit vs 32-bit column indices", scale);
  const auto beams = pd::bench::load_beams(scale);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::TextTable table({"beam", "u32 OI", "u16 OI", "u32 GF/s", "u16 GF/s",
                       "speedup", "paper-scale u16 applicable"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& beam : beams) {
    const auto u32 =
        pd::bench::measure_kernel(gpu, KernelKind::kHalfDouble, beam);
    const auto u16 =
        pd::bench::measure_kernel(gpu, KernelKind::kColIdx16, beam);
    const bool paper_fits = beam.paper.cols <= 65536.0;
    if (!u16) {
      table.add_row({beam.label, pd::fmt_double(
                         u32->estimate.operational_intensity, 3),
                     "n/a (cols > 65536)", pd::fmt_double(u32->estimate.gflops, 1),
                     "n/a", "n/a", paper_fits ? "yes" : "no"});
      continue;
    }
    const double speedup = u16->estimate.gflops / u32->estimate.gflops;
    table.add_row({beam.label,
                   pd::fmt_double(u32->estimate.operational_intensity, 3),
                   pd::fmt_double(u16->estimate.operational_intensity, 3),
                   pd::fmt_double(u32->estimate.gflops, 1),
                   pd::fmt_double(u16->estimate.gflops, 1),
                   pd::fmt_double(speedup, 2),
                   paper_fits ? "yes" : "no"});
    csv_rows.push_back({beam.label,
                        pd::fmt_double(u32->estimate.operational_intensity, 4),
                        pd::fmt_double(u16->estimate.operational_intensity, 4),
                        pd::fmt_double(u32->estimate.gflops, 2),
                        pd::fmt_double(u16->estimate.gflops, 2),
                        pd::fmt_double(speedup, 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Analytic expectation from the paper's traffic model: OI rises "
               "from 2·nnz/(6·nnz+...) to 2·nnz/(4·nnz+...), i.e. ~1.5x, and "
               "a bandwidth-bound kernel speeds up by the same factor.  At "
               "full scale only the prostate cases (5k columns) qualify; the "
               "liver cases (63-70k columns) are 'not much larger than "
               "65535' (paper).\n\n";
  pd::bench::write_csv("ablation_colindex_width",
                       {"beam", "u32_oi", "u16_oi", "u32_gflops", "u16_gflops",
                        "speedup"},
                       csv_rows);
  return 0;
}
