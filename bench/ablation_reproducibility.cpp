// Ablation C — the paper's §II-D reproducibility requirement, demonstrated:
// the warp-reduction kernel returns bitwise-identical doses under every GPU
// block schedule, while the atomic GPU Baseline does not (its results differ
// in the last ulps run-to-run).  This is why RayStation cannot simply use
// atomics despite their simplicity.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/vector_csr.hpp"
#include "common/rng.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_reproducibility",
      "§II-D: bitwise reproducibility across GPU schedules", scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams[0];
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
  const pd::rsformat::RsMatrix rs =
      pd::rsformat::RsMatrix::from_csr(beam.matrix);
  // Realistic optimizer-iterate spot weights (full-precision doubles).  With
  // trivial all-ones weights the quantized contributions have <= 40
  // significant bits and most row sums stay *exactly* representable, hiding
  // the ordering sensitivity; arbitrary weights expose it, as in production.
  pd::Rng rng(2021);
  const std::vector<double> x =
      pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);

  constexpr int kSchedules = 8;
  std::vector<double> hd_ref(beam.matrix.num_rows);
  std::vector<double> base_ref(beam.matrix.num_rows);
  pd::kernels::run_vector_csr<pd::Half, double>(gpu, mh, x,
                                                std::span<double>(hd_ref), 512,
                                                1);
  pd::kernels::run_baseline_gpu(gpu, rs, x, std::span<double>(base_ref), 128,
                                1);

  int hd_mismatches = 0, base_mismatches = 0;
  double base_max_reldiff = 0.0;
  std::vector<double> y(beam.matrix.num_rows);
  for (int seed = 2; seed <= kSchedules + 1; ++seed) {
    pd::kernels::run_vector_csr<pd::Half, double>(gpu, mh, x,
                                                  std::span<double>(y), 512,
                                                  seed);
    hd_mismatches += (y != hd_ref);
    pd::kernels::run_baseline_gpu(gpu, rs, x, std::span<double>(y), 128, seed);
    base_mismatches += (y != base_ref);
    for (std::size_t r = 0; r < y.size(); ++r) {
      if (base_ref[r] != 0.0) {
        base_max_reldiff = std::max(
            base_max_reldiff, std::fabs(y[r] - base_ref[r]) / std::fabs(base_ref[r]));
      }
    }
  }

  pd::TextTable table({"kernel", "schedules compared", "bitwise mismatches",
                       "max relative diff"});
  table.add_row({"Half/Double (warp reduce)", std::to_string(kSchedules),
                 std::to_string(hd_mismatches), "0 (exact)"});
  table.add_row({"GPU Baseline (atomics)", std::to_string(kSchedules),
                 std::to_string(base_mismatches),
                 pd::fmt_sci(base_max_reldiff, 2)});
  std::cout << table.str() << "\n";
  std::cout << "The warp-reduction kernel satisfies RayStation's requirement "
               "(identical bits on every run); the atomic port does not — its "
               "last-ulp drift is harmless numerically but disqualifying "
               "clinically (paper §II-D, §IV).\n\n";
  pd::bench::write_csv(
      "ablation_reproducibility",
      {"kernel", "schedules", "bitwise_mismatches", "max_rel_diff"},
      {{"half_double", std::to_string(kSchedules),
        std::to_string(hd_mismatches), "0"},
       {"gpu_baseline", std::to_string(kSchedules),
        std::to_string(base_mismatches), pd::fmt_sci(base_max_reldiff, 4)}});
  return 0;
}
