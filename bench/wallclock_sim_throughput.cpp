// Wallclock throughput of the simulator *itself* — not the modelled device.
//
// The two-phase engine (PR 2) exists to make every figure and ablation in
// this reproduction cheaper to run: the robust-optimization workloads the
// paper motivates multiply SpMV launch counts by 10-100x, so simulator
// throughput bounds the experiment matrix we can afford.  This bench measures
// simulated warp-instructions/sec and sectors/sec on Liver 1 for each engine
// mode against the retained reference memory path (the seed's sort+unique
// coalescer and global-tick cache scan), and records the trajectory in
// BENCH_gpusim.json so later PRs can show regressions or wins.

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fp16/half.hpp"
#include "gpusim/simcheck.hpp"
#include "gpusim/trace.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

namespace {

struct ModeSpec {
  std::string name;
  bool reference_path;
  pd::gpusim::EngineOptions engine;
};

struct ModeResult {
  std::string name;
  double seconds_per_launch = 0.0;
  double warp_instr_per_sec = 0.0;
  double sectors_per_sec = 0.0;
  double speedup_vs_reference = 0.0;
  pd::gpusim::KernelStats stats;
};

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

std::string fmt_rate(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("wallclock_sim_throughput",
                          "simulator engine throughput (two-phase vs serial)",
                          scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams.front();

  const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
  pd::Rng rng(2022);
  const std::vector<double> x =
      pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);
  std::vector<double> y(beam.matrix.num_rows);

  const std::vector<ModeSpec> modes = {
      {"serial_reference", true,
       {pd::gpusim::TraceMode::kSerial, 1}},
      {"serial", false, {pd::gpusim::TraceMode::kSerial, 1}},
      {"trace_replay", false, {pd::gpusim::TraceMode::kTraceReplay, 0}},
      {"functional_only", false,
       {pd::gpusim::TraceMode::kFunctionalOnly, 0}},
  };

  auto launch_once = [&](pd::gpusim::Gpu& gpu) {
    return pd::kernels::run_vector_csr<pd::Half, double>(
               gpu, mh, x, std::span<double>(y), 512, /*seed=*/1)
        .stats;
  };

  // Honour PROTONDOSE_SIMCHECK like the engine does, so a checked run is an
  // explicit choice — and is branded as such in BENCH_gpusim.json, where the
  // CI gate rejects it (checked numbers are not comparable across PRs).
  const bool simcheck = pd::gpusim::simcheck_env_enabled();
  if (simcheck) {
    std::cout << "PROTONDOSE_SIMCHECK is set: running with the correctness "
                 "analyzer enabled; numbers are NOT trajectory-comparable.\n\n";
  }

  std::vector<ModeResult> results;
  for (const auto& mode : modes) {
    pd::gpusim::Gpu gpu(pd::gpusim::make_a100());
    gpu.set_reference_memory_path(mode.reference_path);
    gpu.set_engine(mode.engine);
    if (simcheck) {
      gpu.enable_check();
    }

    ModeResult r;
    r.name = mode.name;
    r.stats = launch_once(gpu);  // warm-up; also the counters we report

    // Run enough launches for a stable wallclock sample (>= ~0.4 s or 5
    // reps, whichever is more work).
    const auto t0 = std::chrono::steady_clock::now();
    int reps = 0;
    double elapsed = 0.0;
    do {
      launch_once(gpu);
      ++reps;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    } while (reps < 5 || elapsed < 0.4);

    r.seconds_per_launch = elapsed / reps;
    r.warp_instr_per_sec =
        static_cast<double>(r.stats.compute.warp_arith_instrs) /
        r.seconds_per_launch;
    r.sectors_per_sec =
        static_cast<double>(r.stats.traffic.total_sectors()) /
        r.seconds_per_launch;
    results.push_back(std::move(r));
  }
  for (auto& r : results) {
    r.speedup_vs_reference =
        results.front().seconds_per_launch / r.seconds_per_launch;
  }

  pd::TextTable table({"engine mode", "ms / launch", "warp instr/s",
                       "sectors/s", "speedup vs reference"});
  for (const auto& r : results) {
    table.add_row({r.name, fmt(r.seconds_per_launch * 1e3),
                   fmt_rate(r.warp_instr_per_sec),
                   r.stats.traffic.total_sectors() == 0
                       ? "n/a (no traffic sim)"
                       : fmt_rate(r.sectors_per_sec),
                   fmt(r.speedup_vs_reference, 2) + "x"});
  }
  std::cout << table.str() << "\n";
  std::cout << "functional_only skips the cache model entirely (correctness-"
               "only callers: tests, optimizer inner loops); trace_replay "
               "keeps counters bitwise identical to serial.\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({beam.label, r.name, fmt(r.seconds_per_launch * 1e6, 1),
                    fmt_rate(r.warp_instr_per_sec), fmt_rate(r.sectors_per_sec),
                    fmt(r.speedup_vs_reference, 3)});
  }
  pd::bench::write_csv("wallclock_sim_throughput",
                       {"beam", "mode", "us_per_launch", "warp_instr_per_sec",
                        "sectors_per_sec", "speedup_vs_reference"},
                       rows);

  // Machine-readable trajectory record, consumed by later PRs.
  std::ofstream json("BENCH_gpusim.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_sim_throughput\",\n";
  json << "  \"beam\": \"" << beam.label << "\",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"kernel\": \"vector_csr<half,double> tpb=512\",\n";
  json << "  \"simcheck\": " << (simcheck ? "true" : "false") << ",\n";
  json << "  \"warp_instrs_per_launch\": "
       << results.front().stats.compute.warp_arith_instrs << ",\n";
  json << "  \"sectors_per_launch\": "
       << results.front().stats.traffic.total_sectors() << ",\n";
  json << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"mode\": \"" << r.name << "\", \"us_per_launch\": "
         << fmt(r.seconds_per_launch * 1e6, 1)
         << ", \"warp_instr_per_sec\": " << fmt_rate(r.warp_instr_per_sec)
         << ", \"sectors_per_sec\": " << fmt_rate(r.sectors_per_sec)
         << ", \"speedup_vs_reference\": " << fmt(r.speedup_vs_reference, 3)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_gpusim.json\n";
  return 0;
}
