// Table I — characteristics of the dose deposition matrices.
//
// Prints the generated (scaled) matrices next to the paper's full-scale
// numbers; the reproduction targets are the *ratios* (non-zero ratio, rows
// per column, empty-row fraction), which are scale-invariant.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("table1_matrix_characteristics",
                          "Table I: rows/cols/nnz/density/size per beam",
                          scale);
  const auto beams = pd::bench::load_beams(scale);

  pd::TextTable table({"beam", "rows", "cols", "non-zeros", "nnz ratio",
                       "size (2B vals)", "rows/cols", "paper nnz ratio",
                       "paper rows/cols", "paper size"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& b : beams) {
    const auto& s = b.stats;
    const double paper_ratio = b.paper.nnz / (b.paper.rows * b.paper.cols);
    const double paper_bytes = b.paper.nnz * 6.0 + (b.paper.rows + 1) * 4.0;
    std::vector<std::string> row = {
        b.label,
        std::to_string(s.rows),
        std::to_string(s.cols),
        std::to_string(s.nnz),
        pd::fmt_percent(s.density, 2),
        pd::fmt_bytes(static_cast<double>(s.csr_bytes(2, 4))),
        pd::fmt_double(static_cast<double>(s.rows) / s.cols, 1),
        pd::fmt_percent(paper_ratio, 2),
        pd::fmt_double(b.paper.rows / b.paper.cols, 1),
        pd::fmt_bytes(paper_bytes),
    };
    table.add_row(row);
    csv_rows.push_back(std::move(row));
  }
  std::cout << table.str() << "\n";
  std::cout << "Paper Table I reference sizes are computed as 6 B/nnz + "
               "4 B/row offset (half values + 32-bit columns).\n\n";
  pd::bench::write_csv("table1_matrix_characteristics",
                       {"beam", "rows", "cols", "nnz", "nnz_ratio", "size",
                        "rows_per_col", "paper_nnz_ratio", "paper_rows_per_col",
                        "paper_size"},
                       csv_rows);
  return 0;
}
