// Wallclock of the native host backend vs the gpusim backend on Liver 1.
//
// The native backend exists so the downstream consumers the paper motivates
// (optimizer / robust-optimizer inner loops, §I-II) stop paying simulator
// overhead for products whose counters they never read — while staying
// bitwise identical to the simulated kernels (tests/test_native_backend.cpp
// enforces it).  This bench records what that buys: dose products per second
// for the native backend at 1/2/4 threads against gpusim functional-only and
// full trace-replay, plus the batched multi-scenario traversal (K=9, the
// robust-planning shape) against K looped single products.  Results land in
// bench_results/wallclock_native_backend.csv and BENCH_native.json.

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "gpusim/trace.hpp"
#include "kernels/dose_engine.hpp"
#include "sparse/random.hpp"

namespace {

using pd::kernels::DoseEngine;

struct ModeResult {
  std::string name;
  double seconds_per_product = 0.0;
  double speedup_vs_functional = 0.0;
};

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

/// Time `body()` (one dose product per call) with the standard warm-up +
/// "at least 5 reps and 0.4 s" loop; returns seconds per call.
template <typename Body>
double time_per_call(const Body& body) {
  body();  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < 5 || elapsed < 0.4);
  return elapsed / reps;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("wallclock_native_backend",
                          "native host backend vs gpusim (bitwise identical)",
                          scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams.front();

  pd::Rng rng(2023);
  const std::vector<double> x =
      pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);

  auto make_engine = [&](DoseEngine::Backend backend) {
    return DoseEngine(pd::sparse::CsrF64(beam.matrix), pd::gpusim::make_a100(),
                      DoseEngine::Mode::kHalfDouble,
                      pd::kernels::kDefaultVectorTpb,
                      pd::kernels::SpmvFamily::kVector, backend);
  };

  std::vector<ModeResult> results;
  {
    DoseEngine engine = make_engine(DoseEngine::Backend::kGpusim);
    engine.set_engine_options({pd::gpusim::TraceMode::kFunctionalOnly, 0});
    results.push_back({"gpusim_functional_only",
                       time_per_call([&] { engine.compute(x); }), 0.0});
    engine.set_engine_options({pd::gpusim::TraceMode::kTraceReplay, 0});
    results.push_back({"gpusim_trace_replay",
                       time_per_call([&] { engine.compute(x); }), 0.0});
  }
  for (const unsigned threads : {1u, 2u, 4u}) {
    DoseEngine engine = make_engine(DoseEngine::Backend::kNative);
    engine.set_native_threads(threads);
    results.push_back({"native_" + std::to_string(threads) + "t",
                       time_per_call([&] { engine.compute(x); }), 0.0});
  }
  const double functional_s = results.front().seconds_per_product;
  for (auto& r : results) {
    r.speedup_vs_functional = functional_s / r.seconds_per_product;
  }

  // Batched multi-scenario shape: K=9 weight vectors (nominal + 8 error
  // scenarios), one stacked traversal vs K looped products, both native.
  constexpr std::size_t kBatch = 9;
  const std::vector<double> batch_weights = pd::sparse::random_vector(
      rng, kBatch * beam.matrix.num_cols, 0.5, 2.0);
  DoseEngine batch_engine = make_engine(DoseEngine::Backend::kNative);
  batch_engine.set_native_threads(1);
  const double batched_s = time_per_call(
      [&] { batch_engine.compute_batch(batch_weights, kBatch); });
  const double looped_s = time_per_call([&] {
    for (std::size_t j = 0; j < kBatch; ++j) {
      batch_engine.compute(std::span<const double>(
          batch_weights.data() + j * beam.matrix.num_cols,
          beam.matrix.num_cols));
    }
  });
  const double batched_speedup = looped_s / batched_s;

  pd::TextTable table({"backend", "ms / product", "speedup vs functional"});
  for (const auto& r : results) {
    table.add_row({r.name, fmt(r.seconds_per_product * 1e3),
                   fmt(r.speedup_vs_functional, 2) + "x"});
  }
  std::cout << table.str() << "\n";
  std::cout << "batched K=" << kBatch << " (native, 1 thread): "
            << fmt(batched_s * 1e3) << " ms vs looped "
            << fmt(looped_s * 1e3) << " ms -> " << fmt(batched_speedup, 2)
            << "x (one matrix traversal for all scenarios)\n";
  std::cout << "every row above produces bitwise-identical dose (see "
               "tests/test_native_backend.cpp)\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    rows.push_back({beam.label, r.name, fmt(r.seconds_per_product * 1e6, 1),
                    fmt(r.speedup_vs_functional, 3)});
  }
  rows.push_back({beam.label, "native_1t_batched_k9",
                  fmt(batched_s / kBatch * 1e6, 1),
                  fmt(functional_s / (batched_s / kBatch), 3)});
  pd::bench::write_csv("wallclock_native_backend",
                       {"beam", "backend", "us_per_product",
                        "speedup_vs_functional"},
                       rows);

  std::ofstream json("BENCH_native.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_native_backend\",\n";
  json << "  \"beam\": \"" << beam.label << "\",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"kernel\": \"vector_csr<half,double> (DoseEngine, kHalfDouble)\",\n";
  // DoseEngine auto-enables the analyzer under PROTONDOSE_SIMCHECK; brand the
  // record so scripts/check_bench_results.sh can reject checked-run numbers.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"mode\": \"" << r.name << "\", \"us_per_product\": "
         << fmt(r.seconds_per_product * 1e6, 1)
         << ", \"speedup_vs_functional\": " << fmt(r.speedup_vs_functional, 3)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"batch\": {\"k\": " << kBatch
       << ", \"us_batched\": " << fmt(batched_s * 1e6, 1)
       << ", \"us_looped\": " << fmt(looped_s * 1e6, 1)
       << ", \"batched_speedup\": " << fmt(batched_speedup, 3) << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_native.json\n";
  return 0;
}
