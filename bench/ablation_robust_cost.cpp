// Ablation D — the cost of robustness (paper §I-II motivation): robust
// optimization computes dose under every uncertainty scenario in every
// iteration, so the per-iteration dose-calculation time scales with the
// scenario count.  This bench combines the measured optimizer SpMV counts
// with the modeled per-SpMV times of the Half/Double GPU kernel and of the
// RayStation CPU engine, showing what each robustness level costs on each
// backend — the "more sophisticated and computationally demanding
// optimization methods" the paper says faster SpMV enables.

#include <iostream>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "common/table.hpp"
#include "opt/robust.hpp"
#include "sparse/reference.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_robust_cost",
      "§I-II motivation: dose-calculation cost of robust optimization", scale);

  // Scenario matrices for prostate beam 1 at a reduced scale (the optimizer
  // runs many SpMVs; structure is what matters here).
  const auto def = pd::cases::prostate_case(0.3 * scale);
  const auto patient = pd::cases::build_phantom(def);
  const auto scenarios = pd::cases::generate_setup_scenarios(
      def, patient, 0,
      {{3.0, 0.0, 0.0}, {-3.0, 0.0, 0.0}, {0.0, 0.0, 3.0}, {0.0, 0.0, -3.0}});

  // Modeled per-SpMV times at *paper scale* for the prostate workload.
  const auto w = pd::kernels::Workload::from_paper(
      pd::sparse::paper_table1()[4]);
  const auto gpu_est = pd::gpusim::estimate_performance(
      pd::gpusim::make_a100(),
      pd::kernels::analytic_perf_input(pd::kernels::KernelKind::kHalfDouble, w));
  const auto cpu_est = pd::gpusim::estimate_cpu_performance(
      pd::gpusim::make_i9_7940x(), pd::kernels::analytic_cpu_workload(w));

  // Goals shared by every robustness level.
  std::vector<double> probe(scenarios[0].num_rows);
  pd::sparse::reference_spmv(scenarios[0],
                             std::vector<double>(scenarios[0].num_cols, 1.0),
                             probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);
  const auto goals = pd::opt::DoseObjective::standard_goals(
      patient, 0.5 * max_dose, 0.2 * max_dose);

  pd::TextTable table({"scenarios", "iterations", "SpMV products",
                       "SpMV / iteration", "GPU s/iter (model)",
                       "CPU s/iter (model)", "final robust objective"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    std::vector<pd::sparse::CsrF64> subset(scenarios.begin(),
                                           scenarios.begin() + count);
    pd::opt::RobustConfig cfg;
    cfg.max_iterations = 10;
    cfg.mode = count == 1 ? pd::opt::RobustMode::kExpectedValue
                          : pd::opt::RobustMode::kWorstCase;
    pd::opt::RobustPlanOptimizer opt(std::move(subset), goals,
                                     pd::gpusim::make_a100(), cfg);
    const auto result = opt.optimize();
    const double spmv_per_iter =
        static_cast<double>(result.spmv_count) /
        std::max(1u, result.iterations);
    table.add_row({std::to_string(count), std::to_string(result.iterations),
                   std::to_string(result.spmv_count),
                   pd::fmt_double(spmv_per_iter, 1),
                   pd::fmt_sci(spmv_per_iter * gpu_est.seconds, 2),
                   pd::fmt_sci(spmv_per_iter * cpu_est.seconds, 2),
                   pd::fmt_sci(result.objective_history.back(), 3)});
    csv_rows.push_back({std::to_string(count),
                        std::to_string(result.iterations),
                        std::to_string(result.spmv_count),
                        pd::fmt_double(spmv_per_iter, 2),
                        pd::fmt_sci(spmv_per_iter * gpu_est.seconds, 4),
                        pd::fmt_sci(spmv_per_iter * cpu_est.seconds, 4)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Per-SpMV model times at paper scale (Prostate 1): GPU "
            << pd::fmt_sci(gpu_est.seconds, 2) << " s, CPU "
            << pd::fmt_sci(cpu_est.seconds, 2)
            << " s.  Robustness multiplies the per-iteration dose-calculation "
               "load; on the CPU engine that cost dominates planning time, on "
               "the GPU kernel it stays interactive — the paper's clinical "
               "argument.\n\n";
  pd::bench::write_csv("ablation_robust_cost",
                       {"scenarios", "iterations", "spmv_products",
                        "spmv_per_iter", "gpu_s_per_iter", "cpu_s_per_iter"},
                       csv_rows);
  return 0;
}
