#include "bench_common.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cases/cases.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "kernels/adaptive_csr.hpp"
#include "kernels/baseline_gpu.hpp"
#include "kernels/classical_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"
#include "sparse/random.hpp"

namespace pd::bench {

namespace {

std::filesystem::path cache_dir() { return "protondose_bench_cache"; }

std::string cache_key(const std::string& label, double scale) {
  std::ostringstream os;
  os << label << "_s" << scale << ".pdsm";
  std::string name = os.str();
  std::replace(name.begin(), name.end(), ' ', '_');
  return name;
}

BenchBeam finalize(const std::string& label, sparse::CsrF64 matrix,
                   const sparse::PaperMatrixInfo& paper) {
  BenchBeam b;
  b.label = label;
  b.stats = sparse::compute_stats(matrix);
  b.matrix = std::move(matrix);
  b.paper = paper;
  return b;
}

std::vector<BenchBeam> load_with_cache(const std::vector<std::size_t>& indices,
                                       double scale) {
  const auto& paper = sparse::paper_table1();
  std::filesystem::create_directories(cache_dir());

  // Fast path: every requested beam is cached.
  std::vector<BenchBeam> out;
  bool all_cached = true;
  for (const std::size_t i : indices) {
    const auto path = cache_dir() / cache_key(paper[i].name, scale);
    if (!std::filesystem::exists(path)) {
      all_cached = false;
      break;
    }
  }
  if (all_cached) {
    for (const std::size_t i : indices) {
      const auto path = cache_dir() / cache_key(paper[i].name, scale);
      out.push_back(
          finalize(paper[i].name, sparse::read_binary_file(path.string()),
                   paper[i]));
    }
    return out;
  }

  // Slow path: generate everything once and cache all six beams.
  std::cerr << "[bench] generating dose deposition matrices (scale " << scale
            << ") — cached for subsequent runs\n";
  auto generated = cases::generate_all_beams(scale);
  for (auto& ds : generated) {
    const auto path = cache_dir() / cache_key(ds.label, scale);
    sparse::write_binary_file(path.string(), ds.beam.matrix);
  }
  for (const std::size_t i : indices) {
    out.push_back(finalize(generated[i].label,
                           std::move(generated[i].beam.matrix),
                           generated[i].paper));
  }
  return out;
}

}  // namespace

double bench_scale() { return cases::scale_from_env(); }

std::vector<BenchBeam> load_beams(double scale) {
  return load_with_cache({0, 1, 2, 3, 4, 5}, scale);
}

std::vector<BenchBeam> load_case_beams(const std::string& name, double scale) {
  if (name == "liver") {
    return load_with_cache({0, 1, 2, 3}, scale);
  }
  if (name == "prostate") {
    return load_with_cache({4, 5}, scale);
  }
  throw Error("unknown case: " + name);
}

std::optional<Measurement> measure_kernel(gpusim::Gpu& gpu,
                                          kernels::KernelKind kind,
                                          const BenchBeam& beam,
                                          unsigned threads_per_block) {
  using kernels::KernelKind;
  const auto& D = beam.matrix;
  const std::vector<double> x(D.num_cols, 1.0);
  std::vector<double> y(D.num_rows, 0.0);

  Measurement m;
  m.kind = kind;
  double mean_work = beam.stats.mean_nnz_per_nonempty_row;
  unsigned tpb = threads_per_block != 0 ? threads_per_block
                                        : kernels::kDefaultVectorTpb;

  switch (kind) {
    case KernelKind::kHalfDouble: {
      const auto mh = sparse::convert_values<pd::Half>(D);
      m.run = kernels::run_vector_csr<pd::Half, double>(gpu, mh, x,
                                                        std::span<double>(y),
                                                        tpb);
      break;
    }
    case KernelKind::kDouble: {
      m.run = kernels::run_vector_csr<double, double>(gpu, D, x,
                                                      std::span<double>(y),
                                                      tpb);
      break;
    }
    case KernelKind::kColIdx16: {
      if (!sparse::fits_u16_columns(D)) {
        return std::nullopt;  // the paper: liver's full-scale columns don't fit
      }
      const auto mh = sparse::convert_values<pd::Half>(D);
      const auto mh16 = sparse::narrow_col_index<std::uint16_t>(mh);
      m.run = kernels::run_vector_csr<pd::Half, double, std::uint16_t>(
          gpu, mh16, x, std::span<double>(y), tpb);
      break;
    }
    case KernelKind::kSingle:
    case KernelKind::kCuSparseLike:
    case KernelKind::kGinkgoLike: {
      const auto m32 = sparse::convert_values<float>(D);
      std::vector<float> x32(D.num_cols, 1.0f);
      std::vector<float> y32(D.num_rows, 0.0f);
      if (kind == KernelKind::kSingle) {
        m.run = kernels::run_vector_csr<float, float>(
            gpu, m32, x32, std::span<float>(y32), tpb);
      } else if (kind == KernelKind::kGinkgoLike) {
        m.run = kernels::run_classical_csr(gpu, m32, x32,
                                           std::span<float>(y32), tpb);
      } else {
        const auto items = kernels::build_adaptive_worklist(m32);
        m.run = kernels::run_adaptive_csr(gpu, m32, items, x32,
                                          std::span<float>(y32), tpb);
      }
      break;
    }
    case KernelKind::kBaselineRs: {
      const rsformat::RsMatrix rs = rsformat::RsMatrix::from_csr(D);
      if (threads_per_block == 0) {
        tpb = kernels::kDefaultBaselineTpb;
      }
      m.run = kernels::run_baseline_gpu(gpu, rs, x, std::span<double>(y), tpb);
      mean_work = static_cast<double>(D.nnz()) /
                  static_cast<double>(std::max<std::uint64_t>(D.num_cols, 1));
      break;
    }
  }

  gpusim::PerfInput in;
  in.stats = m.run.stats;
  in.config = m.run.config;
  in.precision = m.run.precision;
  in.mean_work_per_warp = mean_work;
  m.estimate = gpusim::estimate_performance(gpu.spec(), in);
  return m;
}

void write_csv(const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::filesystem::create_directories("bench_results");
  const auto path = std::filesystem::path("bench_results") / (name + ".csv");
  std::ofstream os(path);
  PD_CHECK_MSG(os.is_open(), "cannot open " + path.string());
  CsvWriter csv(os);
  csv.write_row(header);
  for (const auto& row : rows) {
    csv.write_row(row);
  }
  std::cout << "[csv] " << path.string() << "\n";
}

void print_banner(const std::string& title, const std::string& paper_item,
                  double scale) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_item << "\n"
            << "Matrix scale: " << scale
            << " (paper-scale structure preserved; see EXPERIMENTS.md)\n"
            << "==============================================================\n\n";
}

}  // namespace pd::bench
