// Ablation H — batched multi-vector SpMV.  The paper's traffic analysis
// (§V) says the 6·nnz matrix bytes dominate; a planning run multiplies the
// SAME matrix by many weight vectors (line-search candidates, objective
// probes), so streaming the matrix once per batch raises per-product
// operational intensity almost linearly in the batch width — until the
// per-accumulator register cost starts eroding occupancy.  This bench sweeps
// the batch width on liver beam 1.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "kernels/multivector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/random.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_batched_spmv",
      "Matrix-traffic amortization: batched products on liver beam 1", scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams[0];
  const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::Rng rng(42);
  std::vector<std::vector<double>> all_x;
  for (std::size_t j = 0; j < pd::kernels::kMaxSpmvBatch; ++j) {
    all_x.push_back(pd::sparse::random_vector(rng, mh.num_cols, 0.1, 2.0));
  }

  pd::TextTable table({"batch", "OI (FLOP/B)", "GF/s (total)",
                       "GF/s per product", "speedup vs k launches",
                       "occupancy"});
  std::vector<std::vector<std::string>> csv_rows;
  double single_seconds = 0.0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    std::vector<std::vector<double>> ys(k,
                                        std::vector<double>(mh.num_rows));
    std::vector<std::span<const double>> xs(all_x.begin(), all_x.begin() + k);
    std::vector<std::span<double>> yspans(ys.begin(), ys.end());
    const auto run = pd::kernels::run_vector_csr_multi<pd::Half, double>(
        gpu, mh, xs, std::span<const std::span<double>>(yspans));

    pd::gpusim::PerfInput in;
    in.stats = run.stats;
    in.config = run.config;
    in.mean_work_per_warp = beam.stats.mean_nnz_per_nonempty_row;
    const auto est = pd::gpusim::estimate_performance(gpu.spec(), in);
    if (k == 1) {
      single_seconds = est.seconds;
    }
    const double speedup =
        static_cast<double>(k) * single_seconds / est.seconds;
    table.add_row({std::to_string(k),
                   pd::fmt_double(est.operational_intensity, 3),
                   pd::fmt_double(est.gflops, 1),
                   pd::fmt_double(est.gflops / k, 1),
                   pd::fmt_double(speedup, 2),
                   pd::fmt_percent(est.occupancy, 0)});
    csv_rows.push_back({std::to_string(k),
                        pd::fmt_double(est.operational_intensity, 4),
                        pd::fmt_double(est.gflops, 2),
                        pd::fmt_double(speedup, 3),
                        pd::fmt_double(est.occupancy, 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Each batch column is bitwise identical to its single-vector "
               "launch (tested), so this is a free-lunch optimization for "
               "line searches — bounded by the register-pressure occupancy "
               "drop visible at the widest batch.\n\n";
  pd::bench::write_csv("ablation_batched_spmv",
                       {"batch", "oi", "gflops_total", "speedup", "occupancy"},
                       csv_rows);
  return 0;
}
