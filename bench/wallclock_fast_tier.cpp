// Wallclock of the fast compute tier (docs/fast_tier.md) on the six Table I
// beams: SpMV executed directly on compressed storage versus the bitwise
// native CSR-double kernel.
//
// v2 adds the fast-tier-v2 surface:
//   - quantized SELL-C-sigma (u16 values + per-column scale, u16 col ids,
//     empty-row compaction) at its model-tuned geometry, versus the float
//     SELL-C-32 container;
//   - the batched fused rsformat kernel at K=9 (the optimizer's gradient
//     batch shape) versus 9 looped single-RHS products;
//   - the measurement-driven autotuner's chosen config per beam (trials from
//     PROTONDOSE_TUNER_TRIALS; 0 pins the deterministic byte-model mode).
// All kernel timings are single-thread — the shape the paper's optimizer
// inner loop issues.  Results land in bench_results/wallclock_fast_tier.csv
// and BENCH_formats.json (schema_version 2, gated by
// scripts/check_bench_results.sh).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/tuner.hpp"
#include "sparse/random.hpp"

namespace {

using pd::kernels::DoseEngine;

constexpr std::size_t kBatchK = 9;

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

const char* format_name(DoseEngine::FastFormat f) {
  switch (f) {
    case DoseEngine::FastFormat::kRsFormat: return "rsformat";
    case DoseEngine::FastFormat::kSellCs: return "sellcs";
    case DoseEngine::FastFormat::kSellCsQ: return "sellcsq";
    case DoseEngine::FastFormat::kAuto: return "auto";
  }
  return "?";
}

/// Warm-up + "at least 5 reps and 0.2 s" timing loop; seconds per call.
template <typename Body>
double time_per_call(const Body& body) {
  body();
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < 5 || elapsed < 0.2);
  return elapsed / reps;
}

struct CaseResult {
  std::string beam;
  std::uint64_t csr_bytes = 0;
  std::uint64_t rs_bytes = 0;
  std::uint64_t sell_bytes = 0;
  std::uint64_t sellq_bytes = 0;
  double us_native_csr = 0.0;
  double us_fused_rsformat = 0.0;
  double us_sellcs = 0.0;
  double us_sellcsq = 0.0;
  // Per-product microseconds at K=9: one fused batched launch vs 9 looped
  // single-RHS products on the same rsformat container.
  double us_batched_k9 = 0.0;
  double us_looped_k9 = 0.0;
  // Tuner outcome (chosen fast config for this beam).
  std::string tuned_format;
  unsigned tuned_c = 0;
  std::uint32_t tuned_sigma = 0;
  unsigned tuned_threads = 1;
  std::uint64_t tuned_bytes = 0;
  double rs_ratio() const {
    return static_cast<double>(rs_bytes) / static_cast<double>(csr_bytes);
  }
  double sell_ratio() const {
    return static_cast<double>(sell_bytes) / static_cast<double>(csr_bytes);
  }
  double sellq_vs_sell_ratio() const {
    return static_cast<double>(sellq_bytes) / static_cast<double>(sell_bytes);
  }
  double batched_speedup_k9() const {
    return us_batched_k9 > 0.0 ? us_looped_k9 / us_batched_k9 : 0.0;
  }
};

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "wallclock_fast_tier",
      "fast tier v2: compressed-storage compute, quantized SELL, batched "
      "fused rsformat, autotuner",
      scale);
  const auto beams = pd::bench::load_beams(scale);
  const pd::kernels::TuneOptions tune_opts =
      pd::kernels::tune_options_from_env();

  std::vector<CaseResult> results;
  for (const auto& beam : beams) {
    DoseEngine engine(pd::sparse::CsrF64(beam.matrix), pd::gpusim::make_a100(),
                      DoseEngine::Mode::kDouble,
                      pd::kernels::kDefaultVectorTpb,
                      pd::kernels::SpmvFamily::kVector,
                      DoseEngine::Backend::kNative);
    engine.set_native_threads(1);
    pd::Rng rng(4096 + beam.matrix.nnz());
    const std::vector<double> x =
        pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);

    CaseResult r;
    r.beam = beam.label;
    r.csr_bytes = beam.matrix.bytes();
    r.us_native_csr = time_per_call([&] { engine.compute(x); }) * 1e6;

    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kRsFormat);
    r.rs_bytes = pd::kernels::rsformat_streamed_bytes(engine.fast_rs_matrix());
    r.us_fused_rsformat = time_per_call([&] { engine.compute(x); }) * 1e6;

    // Batched fused rsformat at K=9 vs 9 looped products (same container,
    // same thread).  Per-product time for both sides.
    {
      const std::size_t spots = engine.num_spots();
      std::vector<double> bw(kBatchK * spots);
      for (double& v : bw) v = rng.uniform(0.5, 2.0);
      r.us_batched_k9 =
          time_per_call([&] { engine.compute_batch(bw, kBatchK); }) * 1e6 /
          static_cast<double>(kBatchK);
      r.us_looped_k9 = time_per_call([&] {
                         for (std::size_t j = 0; j < kBatchK; ++j) {
                           engine.compute(std::span<const double>(
                               bw.data() + j * spots, spots));
                         }
                       }) *
                       1e6 / static_cast<double>(kBatchK);
    }

    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kSellCs);
    r.sell_bytes =
        pd::kernels::sellcs_streamed_bytes(engine.fast_sell_matrix());
    r.us_sellcs = time_per_call([&] { engine.compute(x); }) * 1e6;

    // Autotune (container grid + geometry; trials from env).  The chosen
    // config is what EngineCache would pin for this plan.
    const pd::kernels::TunedConfig tuned =
        pd::kernels::autotune_fast_tier(engine, tune_opts);
    r.tuned_format = format_name(tuned.format);
    r.tuned_c = tuned.sell_c;
    r.tuned_sigma = tuned.sell_sigma;
    r.tuned_threads = tuned.fast_threads;
    r.tuned_bytes = tuned.streamed_bytes;

    // Quantized SELL at the model-winning quantized geometry (deterministic:
    // the byte model is exact, so this never depends on timing noise).
    unsigned qc = 8;
    std::uint32_t qsigma = 1024;
    for (const pd::kernels::TuneCandidate& cand : tuned.candidates) {
      if (cand.format == DoseEngine::FastFormat::kSellCsQ) {
        qc = cand.sell_c;
        qsigma = cand.sell_sigma;
        break;  // candidates are model-sorted: first quantized is its best
      }
    }
    engine.set_fast_sell_config(qc, qsigma);
    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kSellCsQ);
    r.sellq_bytes =
        pd::kernels::sellcs_q_streamed_bytes(engine.fast_sellq_matrix());
    r.us_sellcsq = time_per_call([&] { engine.compute(x); }) * 1e6;
    results.push_back(r);
  }

  int fused_wins = 0;
  double max_rs_ratio = 0.0;
  double max_sellq_ratio = 0.0;
  double max_batched_speedup = 0.0;
  for (const auto& r : results) {
    fused_wins += r.us_fused_rsformat < r.us_native_csr ? 1 : 0;
    max_rs_ratio = std::max(max_rs_ratio, r.rs_ratio());
    max_sellq_ratio = std::max(max_sellq_ratio, r.sellq_vs_sell_ratio());
    max_batched_speedup =
        std::max(max_batched_speedup, r.batched_speedup_k9());
  }

  pd::TextTable table({"beam", "CSR64 us", "fused rs us", "SELL us",
                       "SELLq us", "K=9 speedup", "rs/CSR64 B",
                       "SELLq/SELL B"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& r : results) {
    table.add_row({r.beam, fmt(r.us_native_csr, 1), fmt(r.us_fused_rsformat, 1),
                   fmt(r.us_sellcs, 1), fmt(r.us_sellcsq, 1),
                   fmt(r.batched_speedup_k9(), 2) + "x",
                   pd::fmt_percent(r.rs_ratio(), 1),
                   pd::fmt_percent(r.sellq_vs_sell_ratio(), 1)});
    csv_rows.push_back(
        {r.beam, std::to_string(r.csr_bytes), std::to_string(r.rs_bytes),
         std::to_string(r.sell_bytes), std::to_string(r.sellq_bytes),
         fmt(r.us_native_csr, 1), fmt(r.us_fused_rsformat, 1),
         fmt(r.us_sellcs, 1), fmt(r.us_sellcsq, 1), fmt(r.us_batched_k9, 1),
         fmt(r.us_looped_k9, 1), fmt(r.batched_speedup_k9(), 3),
         fmt(r.rs_ratio(), 4), fmt(r.sell_ratio(), 4),
         fmt(r.sellq_vs_sell_ratio(), 4), r.tuned_format,
         std::to_string(r.tuned_c), std::to_string(r.tuned_sigma)});
  }
  std::cout << table.str() << "\n";
  std::cout << "fused rsformat decode: "
            << pd::kernels::rsformat_spmv_variant_name()
            << ", SELL-C-32 kernel: "
            << pd::kernels::sellcs_spmv_variant_name(32)
            << ", quantized SELL kernel: "
            << pd::kernels::sellcs_q_spmv_variant_name(32) << "\n";
  std::cout << "fused rsformat beats native CSR-double on " << fused_wins
            << "/" << results.size()
            << " beams (single thread, K=1) while streaming "
            << pd::fmt_percent(max_rs_ratio, 1)
            << " of the CSR-double bytes at worst.\n";
  std::cout << "quantized SELL streams " << pd::fmt_percent(max_sellq_ratio, 1)
            << " of the float SELL container at worst; batched K=9 fused "
               "launch peaks at "
            << fmt(max_batched_speedup, 2) << "x over looped.\n\n";
  pd::bench::write_csv(
      "wallclock_fast_tier",
      {"beam", "csr_double_bytes", "rsformat_bytes", "sellcs_bytes",
       "sellcsq_bytes", "us_native_csr", "us_fused_rsformat", "us_sellcs",
       "us_sellcsq", "us_batched_k9", "us_looped_k9", "batched_speedup_k9",
       "streamed_bytes_ratio", "sellcs_bytes_ratio", "sellcsq_vs_sellcs_ratio",
       "tuned_format", "tuned_chunk_height", "tuned_sort_window"},
      csv_rows);

  std::ofstream json("BENCH_formats.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_fast_tier\",\n";
  json << "  \"schema_version\": 2,\n";
  json << "  \"scale\": " << scale << ",\n";
  // DoseEngine auto-enables the analyzer under PROTONDOSE_SIMCHECK; the fast
  // tier is host-native so checking cannot perturb it, but brand the record
  // anyway so scripts/check_bench_results.sh treats all BENCH json uniformly.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"fused_variant\": \""
       << pd::kernels::rsformat_spmv_variant_name() << "\",\n";
  json << "  \"sellcs_variant\": \""
       << pd::kernels::sellcs_spmv_variant_name(32) << "\",\n";
  json << "  \"sellcsq_variant\": \""
       << pd::kernels::sellcs_q_spmv_variant_name(32) << "\",\n";
  json << "  \"tuner_trials\": " << tune_opts.trials << ",\n";
  json << "  \"batch_k\": " << kBatchK << ",\n";
  json << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"beam\": \"" << r.beam << "\""
         << ", \"csr_double_bytes\": " << r.csr_bytes
         << ", \"rsformat_bytes\": " << r.rs_bytes
         << ", \"sellcs_bytes\": " << r.sell_bytes
         << ", \"sellcsq_bytes\": " << r.sellq_bytes
         << ", \"streamed_bytes_ratio\": " << fmt(r.rs_ratio(), 4)
         << ", \"sellcs_bytes_ratio\": " << fmt(r.sell_ratio(), 4)
         << ", \"sellcsq_vs_sellcs_ratio\": "
         << fmt(r.sellq_vs_sell_ratio(), 4)
         << ", \"us_native_csr\": " << fmt(r.us_native_csr, 1)
         << ", \"us_fused_rsformat\": " << fmt(r.us_fused_rsformat, 1)
         << ", \"us_sellcs\": " << fmt(r.us_sellcs, 1)
         << ", \"us_sellcsq\": " << fmt(r.us_sellcsq, 1)
         << ", \"us_batched_k9\": " << fmt(r.us_batched_k9, 1)
         << ", \"us_looped_k9\": " << fmt(r.us_looped_k9, 1)
         << ", \"batched_speedup_k9\": " << fmt(r.batched_speedup_k9(), 4)
         << ", \"tuned\": {\"format\": \"" << r.tuned_format << "\""
         << ", \"chunk_height\": " << r.tuned_c
         << ", \"sort_window\": " << r.tuned_sigma
         << ", \"fast_threads\": " << r.tuned_threads
         << ", \"streamed_bytes\": " << r.tuned_bytes << "}}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"headline\": {\"fused_wins\": " << fused_wins
       << ", \"cases\": " << results.size()
       << ", \"max_streamed_bytes_ratio\": " << fmt(max_rs_ratio, 4)
       << ", \"max_sellcsq_vs_sellcs_ratio\": " << fmt(max_sellq_ratio, 4)
       << ", \"max_batched_speedup_k9\": " << fmt(max_batched_speedup, 4)
       << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_formats.json\n";
  return 0;
}
