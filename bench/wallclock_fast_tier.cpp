// Wallclock of the fast compute tier (docs/fast_tier.md) on the six Table I
// beams: SpMV executed directly on compressed storage versus the bitwise
// native CSR-double kernel.
//
// The fused rsformat kernel never inflates the 16-bit delta/value streams to
// CSR — it decodes 16 entries at a time (AVX2 prefix-sum row reconstruction)
// and accumulates contributions in the same pass, so it streams the
// compressed container's bytes (~4 B/nnz) instead of CSR-double's
// ~12 B/nnz.  The SELL-C-32 kernel streams float values with SIMD gathers.
// Both are measured single-thread, K=1 — the shape the paper's optimizer
// inner loop issues — against the same engine's bitwise tier.  Results land
// in bench_results/wallclock_fast_tier.csv and BENCH_formats.json
// (schema-checked by scripts/check_bench_results.sh).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/tuner.hpp"
#include "sparse/random.hpp"

namespace {

using pd::kernels::DoseEngine;

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

/// Warm-up + "at least 5 reps and 0.2 s" timing loop; seconds per call.
template <typename Body>
double time_per_call(const Body& body) {
  body();
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < 5 || elapsed < 0.2);
  return elapsed / reps;
}

struct CaseResult {
  std::string beam;
  std::uint64_t csr_bytes = 0;
  std::uint64_t rs_bytes = 0;
  std::uint64_t sell_bytes = 0;
  double us_native_csr = 0.0;
  double us_fused_rsformat = 0.0;
  double us_sellcs = 0.0;
  double rs_ratio() const {
    return static_cast<double>(rs_bytes) / static_cast<double>(csr_bytes);
  }
  double sell_ratio() const {
    return static_cast<double>(sell_bytes) / static_cast<double>(csr_bytes);
  }
};

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "wallclock_fast_tier",
      "fast tier: compute on compressed storage vs native CSR-double", scale);
  const auto beams = pd::bench::load_beams(scale);

  std::vector<CaseResult> results;
  for (const auto& beam : beams) {
    DoseEngine engine(pd::sparse::CsrF64(beam.matrix), pd::gpusim::make_a100(),
                      DoseEngine::Mode::kDouble,
                      pd::kernels::kDefaultVectorTpb,
                      pd::kernels::SpmvFamily::kVector,
                      DoseEngine::Backend::kNative);
    engine.set_native_threads(1);
    pd::Rng rng(4096 + beam.matrix.nnz());
    const std::vector<double> x =
        pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);

    CaseResult r;
    r.beam = beam.label;
    r.csr_bytes = beam.matrix.bytes();
    r.us_native_csr = time_per_call([&] { engine.compute(x); }) * 1e6;

    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kRsFormat);
    r.rs_bytes = pd::kernels::rsformat_streamed_bytes(engine.fast_rs_matrix());
    r.us_fused_rsformat = time_per_call([&] { engine.compute(x); }) * 1e6;

    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kSellCs);
    r.sell_bytes =
        pd::kernels::sellcs_streamed_bytes(engine.fast_sell_matrix());
    r.us_sellcs = time_per_call([&] { engine.compute(x); }) * 1e6;
    results.push_back(r);
  }

  int fused_wins = 0;
  double max_rs_ratio = 0.0;
  for (const auto& r : results) {
    fused_wins += r.us_fused_rsformat < r.us_native_csr ? 1 : 0;
    max_rs_ratio = std::max(max_rs_ratio, r.rs_ratio());
  }

  pd::TextTable table({"beam", "CSR64 us", "fused rs us", "SELL-C-32 us",
                       "rs bytes / CSR64", "sell bytes / CSR64"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& r : results) {
    table.add_row({r.beam, fmt(r.us_native_csr, 1), fmt(r.us_fused_rsformat, 1),
                   fmt(r.us_sellcs, 1), pd::fmt_percent(r.rs_ratio(), 1),
                   pd::fmt_percent(r.sell_ratio(), 1)});
    csv_rows.push_back({r.beam, std::to_string(r.csr_bytes),
                        std::to_string(r.rs_bytes),
                        std::to_string(r.sell_bytes), fmt(r.us_native_csr, 1),
                        fmt(r.us_fused_rsformat, 1), fmt(r.us_sellcs, 1),
                        fmt(r.rs_ratio(), 4), fmt(r.sell_ratio(), 4)});
  }
  std::cout << table.str() << "\n";
  std::cout << "fused rsformat decode: " << pd::kernels::rsformat_spmv_variant_name()
            << ", SELL-C-32 kernel: "
            << pd::kernels::sellcs_spmv_variant_name(32) << "\n";
  std::cout << "fused rsformat beats native CSR-double on " << fused_wins
            << "/" << results.size()
            << " beams (single thread, K=1) while streaming "
            << pd::fmt_percent(max_rs_ratio, 1)
            << " of the CSR-double bytes at worst.\n\n";
  pd::bench::write_csv("wallclock_fast_tier",
                       {"beam", "csr_double_bytes", "rsformat_bytes",
                        "sellcs_bytes", "us_native_csr", "us_fused_rsformat",
                        "us_sellcs", "streamed_bytes_ratio",
                        "sellcs_bytes_ratio"},
                       csv_rows);

  std::ofstream json("BENCH_formats.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_fast_tier\",\n";
  json << "  \"scale\": " << scale << ",\n";
  // DoseEngine auto-enables the analyzer under PROTONDOSE_SIMCHECK; the fast
  // tier is host-native so checking cannot perturb it, but brand the record
  // anyway so scripts/check_bench_results.sh treats all BENCH json uniformly.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"fused_variant\": \""
       << pd::kernels::rsformat_spmv_variant_name() << "\",\n";
  json << "  \"sellcs_variant\": \""
       << pd::kernels::sellcs_spmv_variant_name(32) << "\",\n";
  json << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"beam\": \"" << r.beam << "\""
         << ", \"csr_double_bytes\": " << r.csr_bytes
         << ", \"rsformat_bytes\": " << r.rs_bytes
         << ", \"sellcs_bytes\": " << r.sell_bytes
         << ", \"streamed_bytes_ratio\": " << fmt(r.rs_ratio(), 4)
         << ", \"sellcs_bytes_ratio\": " << fmt(r.sell_ratio(), 4)
         << ", \"us_native_csr\": " << fmt(r.us_native_csr, 1)
         << ", \"us_fused_rsformat\": " << fmt(r.us_fused_rsformat, 1)
         << ", \"us_sellcs\": " << fmt(r.us_sellcs, 1) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"headline\": {\"fused_wins\": " << fused_wins
       << ", \"cases\": " << results.size()
       << ", \"max_streamed_bytes_ratio\": " << fmt(max_rs_ratio, 4) << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_formats.json\n";
  return 0;
}
