// Wallclock of ShardedDoseService plan-locality scaling on Liver 1.
//
// A clinic-scale optimizer fleet works dozens of plans at once, and the
// per-shard engine cache is the scarce resource: every cache miss rebuilds a
// native engine (format conversion + device setup), which costs many times a
// single dose compute.  The sharded tier's consistent-hash placement
// (src/service/shard_router.*) partitions the plan population so each
// shard's working set fits its cache — the aggregate cache grows with the
// shard count while every request still lands on a shard that already holds
// its plan's engine.
//
// This bench measures exactly that effect: served requests per second for a
// fixed 8-plan round-robin request stream through 1, 2, and 4 shards with
// identical per-shard configuration (1 worker, engine_cache_capacity 4).
// At 1 shard the 8-plan working set cycles through a 4-entry LRU cache and
// every batch rebuilds its engine; at 2+ shards each shard owns at most 4
// plans and the steady state is all cache hits.  The plan names are chosen
// (by deterministic search over the real ShardRouter) so placement is
// balanced at both 2 and 4 shards — the bench isolates cache locality, not
// placement luck.  Every configuration returns bitwise-identical doses
// (verified in-run, and the property battery lives in
// tests/test_shard_router.cpp), so this is purely a throughput trade.
// Results land in bench_results/wallclock_shard.csv and BENCH_shard.json;
// scripts/check_bench_results.sh gates the two headline speedups.

#include <array>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "service/shard_router.hpp"
#include "service/sharded_service.hpp"
#include "sparse/random.hpp"

namespace {

constexpr std::size_t kPlans = 8;
constexpr std::size_t kRequests = 128;  // divisible by kPlans
constexpr std::size_t kRounds = 4;

struct ConfigResult {
  std::size_t shards = 0;
  double req_per_s = 0.0;
  double speedup = 0.0;
  std::uint64_t cache_misses = 0;
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

/// Plan names whose first-choice placement is balanced at BOTH 2 and 4
/// shards (4+4 and 2+2+2+2).  Deterministic greedy search over the real
/// router: candidate "plan-<k>" is kept iff neither shard quota is full.
std::vector<std::string> pick_plan_names() {
  pd::service::ShardRouterConfig two;
  two.shards = 2;
  pd::service::ShardRouterConfig four;
  four.shards = 4;
  const pd::service::ShardRouter r2(two);
  const pd::service::ShardRouter r4(four);
  std::array<std::size_t, 2> quota2{};
  std::array<std::size_t, 4> quota4{};
  std::vector<std::string> names;
  for (int k = 0; names.size() < kPlans; ++k) {
    std::string name = "plan-" + std::to_string(k);
    const std::size_t s2 = r2.placement(name).front();
    const std::size_t s4 = r4.placement(name).front();
    if (quota2[s2] < kPlans / 2 && quota4[s4] < kPlans / 4) {
      ++quota2[s2];
      ++quota4[s4];
      names.push_back(std::move(name));
    }
  }
  return names;
}

/// One replay through a warmed service: submit the whole stream round-robin
/// across the plans, drain, check every dose arrived kOk.  Returns elapsed
/// seconds; when `doses` is non-null the per-request doses are copied out
/// for the cross-configuration bitwise check.
double replay_once(pd::service::ShardedDoseService& service,
                   const std::vector<std::string>& plans,
                   const std::vector<std::vector<double>>& stream,
                   std::vector<std::vector<double>>* doses = nullptr) {
  std::vector<pd::service::Ticket> tickets;
  tickets.reserve(stream.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    tickets.push_back(service.submit(plans[i % plans.size()], stream[i]));
  }
  service.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (pd::service::Ticket& ticket : tickets) {
    pd::service::DoseResult result = ticket.result.get();
    if (result.status != pd::service::RequestStatus::kOk) {
      throw pd::Error("wallclock_shard: request did not complete kOk");
    }
    if (doses != nullptr) {
      doses->push_back(std::move(result.dose));
    }
  }
  return elapsed;
}

bool bitwise_equal(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(double)) !=
        0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "wallclock_shard",
      "ShardedDoseService plan-locality scaling (served req/s)", scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams.front();
  const pd::sparse::CsrF64& matrix = beam.matrix;

  const std::vector<std::string> plans = pick_plan_names();
  pd::Rng rng(2026);
  std::vector<std::vector<double>> stream(kRequests);
  for (auto& weights : stream) {
    weights = pd::sparse::random_vector(rng, matrix.num_cols, 0.5, 2.0);
  }

  // One live service per shard count, identical per-shard configuration.
  // Warmed up front (the warm replay doubles as the bitwise cross-check),
  // then timed in interleaved rounds — the container core's throughput
  // drifts on a seconds scale, and round-robin rounds expose every config
  // to the same drift.  Per-config minimum over rounds is reported.
  const std::size_t kShardCounts[] = {1, 2, 4};
  std::vector<std::unique_ptr<pd::service::ShardedDoseService>> services;
  std::vector<ConfigResult> results;
  std::vector<std::vector<double>> reference_doses;
  bool bitwise_ok = true;
  for (const std::size_t shards : kShardCounts) {
    pd::service::ShardedServiceConfig config;
    config.shards = shards;
    config.replication = 1;
    config.shard.workers = 1;
    config.shard.batch_cap = 4;
    config.shard.queue_bound = 2 * kRequests;  // hold the replay: no rejects
    config.shard.flush_deadline_ms = 0.5;
    config.shard.engine_cache_capacity = 4;  // 8-plan set fits only sharded
    config.shard.engine.device = pd::gpusim::make_a100();
    config.shard.engine.backend = pd::kernels::DoseEngine::Backend::kNative;
    services.push_back(
        std::make_unique<pd::service::ShardedDoseService>(config));
    for (const std::string& plan : plans) {
      services.back()->register_plan(
          plan, [&matrix] { return pd::sparse::CsrF64(matrix); });
    }
    std::vector<std::vector<double>> doses;
    replay_once(*services.back(), plans, stream, &doses);
    if (reference_doses.empty()) {
      reference_doses = std::move(doses);
    } else if (!bitwise_equal(reference_doses, doses)) {
      bitwise_ok = false;
    }
    ConfigResult r;
    r.shards = shards;
    results.push_back(r);
  }
  if (!bitwise_ok) {
    throw pd::Error("wallclock_shard: doses differ across shard counts");
  }

  std::vector<double> best_s(services.size(), 0.0);
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < services.size(); ++i) {
      const double elapsed = replay_once(*services[i], plans, stream);
      if (best_s[i] == 0.0 || elapsed < best_s[i]) {
        best_s[i] = elapsed;
      }
    }
  }
  for (std::size_t i = 0; i < services.size(); ++i) {
    const pd::service::ShardedServiceStats stats = services[i]->stats();
    results[i].req_per_s = static_cast<double>(kRequests) / best_s[i];
    results[i].speedup = results[i].req_per_s / results[0].req_per_s;
    double batch_requests = 0.0;
    double batches = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    for (const pd::service::ServiceStats& shard : stats.shards) {
      results[i].cache_misses += shard.cache.misses;
      batches += static_cast<double>(shard.batches);
      batch_requests += static_cast<double>(shard.batches) *
                        shard.mean_batch_size();
      p50 = std::max(p50, shard.p50_latency_ms);
      p99 = std::max(p99, shard.p99_latency_ms);
    }
    results[i].mean_batch = batches > 0.0 ? batch_requests / batches : 0.0;
    results[i].p50_ms = p50;
    results[i].p99_ms = p99;
  }
  services.clear();

  const double speedup2 = results[1].speedup;
  const double speedup4 = results[2].speedup;

  pd::TextTable table({"shards", "req/s", "speedup", "cache misses",
                       "mean batch", "p50 ms", "p99 ms"});
  for (const ConfigResult& r : results) {
    table.add_row({std::to_string(r.shards), fmt(r.req_per_s, 1),
                   fmt(r.speedup, 2), std::to_string(r.cache_misses),
                   fmt(r.mean_batch, 2), fmt(r.p50_ms, 2), fmt(r.p99_ms, 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "headline: " << fmt(speedup2, 2) << "x at 2 shards, "
            << fmt(speedup4, 2)
            << "x at 4 shards served throughput vs 1 shard (8 plans, "
               "per-shard cache 4; doses bitwise identical)\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const ConfigResult& r : results) {
    rows.push_back({beam.label, std::to_string(r.shards), fmt(r.req_per_s, 1),
                    fmt(r.speedup, 3), std::to_string(r.cache_misses),
                    fmt(r.mean_batch, 2), fmt(r.p50_ms, 2),
                    fmt(r.p99_ms, 2)});
  }
  pd::bench::write_csv("wallclock_shard",
                       {"beam", "shards", "req_per_s", "speedup",
                        "cache_misses", "mean_batch", "p50_ms", "p99_ms"},
                       rows);

  std::ofstream json("BENCH_shard.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_shard\",\n";
  json << "  \"beam\": \"" << beam.label << "\",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"kernel\": \"ShardedDoseService -> DoseService compute_batch "
          "(native, kHalfDouble)\",\n";
  // DoseEngine auto-enables the analyzer under PROTONDOSE_SIMCHECK; brand the
  // record so scripts/check_bench_results.sh can reject checked-run numbers.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"requests\": " << kRequests << ",\n";
  json << "  \"plans\": " << kPlans << ",\n";
  json << "  \"engine_cache_capacity\": 4,\n";
  json << "  \"bitwise_identical\": " << (bitwise_ok ? "true" : "false")
       << ",\n";
  json << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json << "    {\"shards\": " << r.shards
         << ", \"req_per_s\": " << fmt(r.req_per_s, 1)
         << ", \"speedup\": " << fmt(r.speedup, 3)
         << ", \"cache_misses\": " << r.cache_misses
         << ", \"mean_batch_size\": " << fmt(r.mean_batch, 2)
         << ", \"p50_ms\": " << fmt(r.p50_ms, 2)
         << ", \"p99_ms\": " << fmt(r.p99_ms, 2) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"headline\": {\"baseline_shards\": 1, "
          "\"speedup_2_shards\": "
       << fmt(speedup2, 3) << ", \"speedup_4_shards\": " << fmt(speedup4, 3)
       << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_shard.json\n";
  return 0;
}
