// Figure 3 — roofline analysis on the A100 of the Ginkgo-like, cuSPARSE-like
// and our mixed half/double (and single) SpMV kernels.
//
// Two complementary views are reported:
//   * measured: operational intensity from the cache simulator's DRAM
//     counters on the generated (scaled) liver-1 / prostate-1 beams, with the
//     modeled GFLOP/s — the analogue of the Nsight-counter measurement;
//   * analytic at paper scale: the infinite-cache upper bound (the paper's
//     6·nnz + 12·nr + 8·nc derivation, OI ≈ 0.332 for liver 1).

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "roofline/roofline.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("fig3_roofline",
                          "Figure 3: A100 roofline of Ginkgo/cuSPARSE/ours",
                          scale);
  const auto beams = pd::bench::load_beams(scale);
  const auto spec = pd::gpusim::make_a100();
  pd::gpusim::Gpu gpu(spec);

  const std::vector<KernelKind> kinds = {
      KernelKind::kHalfDouble, KernelKind::kSingle, KernelKind::kCuSparseLike,
      KernelKind::kGinkgoLike};

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t idx : {std::size_t{0}, std::size_t{4}}) {
    const auto& beam = beams[idx];
    std::vector<pd::roofline::RooflinePoint> points;
    pd::TextTable table({"kernel", "measured OI", "analytic OI (paper scale)",
                         "GFLOP/s", "GB/s", "% of roof"});
    for (const KernelKind kind : kinds) {
      const auto m = pd::bench::measure_kernel(gpu, kind, beam);
      if (!m) {
        continue;
      }
      const double analytic_oi = pd::kernels::analytic_operational_intensity(
          kind, pd::kernels::Workload::from_paper(beam.paper));
      const auto model = pd::roofline::make_roofline(spec, m->run.precision);
      pd::roofline::RooflinePoint pt{pd::kernels::to_string(kind),
                                     m->estimate.operational_intensity,
                                     m->estimate.gflops};
      points.push_back(pt);
      table.add_row({pd::kernels::to_string(kind),
                     pd::fmt_double(pt.oi, 3), pd::fmt_double(analytic_oi, 3),
                     pd::fmt_double(pt.gflops, 1),
                     pd::fmt_double(m->estimate.dram_gbs, 1),
                     pd::fmt_percent(pd::roofline::roofline_fraction(model, pt),
                                     1)});
      csv_rows.push_back({beam.label, pd::kernels::to_string(kind),
                          pd::fmt_double(pt.oi, 4),
                          pd::fmt_double(analytic_oi, 4),
                          pd::fmt_double(pt.gflops, 2),
                          pd::fmt_double(m->estimate.dram_gbs, 2)});
    }
    std::cout << beam.label << ":\n" << table.str() << "\n";
    const auto model64 =
        pd::roofline::make_roofline(spec, pd::gpusim::FlopPrecision::kFp64);
    std::cout << pd::roofline::ascii_roofline(model64, points, 72, 16) << "\n";
  }

  std::cout << "Paper headline: Half/Double upper-bound OI for liver 1 is "
            << pd::fmt_double(pd::kernels::analytic_operational_intensity(
                   KernelKind::kHalfDouble,
                   pd::kernels::Workload::from_paper(beams[0].paper)), 3)
            << " (paper reports 0.332), and the Half/Double OI exceeds the "
               "single-precision kernels', which is why it wins despite "
               "identical bandwidth.\n\n";
  pd::bench::write_csv("fig3_roofline",
                       {"beam", "kernel", "measured_oi", "analytic_oi_paper",
                        "gflops", "gbs"},
                       csv_rows);
  return 0;
}
