// Wallclock of DoseService adaptive batching on Liver 1.
//
// An optimizer fleet does not call DoseEngine directly — it submits spot
// weight vectors to a DoseService, which coalesces same-plan requests into
// single compute_batch launches (src/service/).  This bench measures what
// the coalescing buys: served requests per second through the full service
// stack (queue + worker pool + engine cache + batched native traversal) as a
// function of batch cap and worker count, against the same stack with
// batching off (cap 1, one launch per request).  The headline ratio —
// cap 9 vs cap 1 at one worker — is the service-level counterpart of the
// ablation_batched_spmv kernel numbers.  Every configuration returns
// bitwise-identical doses (tests/test_service.cpp), so this is purely a
// throughput trade.  Results land in bench_results/wallclock_service.csv and
// BENCH_service.json.

#include <chrono>
#include <memory>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "service/dose_service.hpp"
#include "sparse/random.hpp"

namespace {

constexpr std::size_t kRequests = 135;  // divisible by both 1, 4 (mostly), 9

struct ConfigResult {
  unsigned workers = 0;
  std::size_t batch_cap = 0;
  double req_per_s = 0.0;
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

/// One timed replay through an already-warmed service: submit the whole
/// stream, drain, check every dose arrived kOk.  Returns elapsed seconds.
double replay_once(pd::service::DoseService& service,
                   const std::vector<std::vector<double>>& stream) {
  std::vector<pd::service::Ticket> tickets;
  tickets.reserve(stream.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::vector<double>& weights : stream) {
    tickets.push_back(service.submit("liver1", weights));
  }
  service.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (pd::service::Ticket& ticket : tickets) {
    if (ticket.result.get().status != pd::service::RequestStatus::kOk) {
      throw pd::Error("wallclock_service: request did not complete kOk");
    }
  }
  return elapsed;
}

pd::service::ServiceConfig make_config(unsigned workers,
                                       std::size_t batch_cap) {
  pd::service::ServiceConfig config;
  config.workers = workers;
  config.batch_cap = batch_cap;
  config.queue_bound = 2 * kRequests;  // hold the whole replay: no rejects
  config.flush_deadline_ms = 0.5;
  config.engine.device = pd::gpusim::make_a100();
  config.engine.backend = pd::kernels::DoseEngine::Backend::kNative;
  return config;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "wallclock_service",
      "DoseService adaptive batching vs batching-off (served req/s)", scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams.front();

  pd::Rng rng(2024);
  std::vector<std::vector<double>> stream(kRequests);
  for (auto& weights : stream) {
    weights = pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);
  }

  // One live service per configuration, all warmed up front, then timed
  // round-robin: each round replays the same stream through every config
  // back-to-back and the per-config minimum over rounds is reported.
  // Interleaving matters more than repetition here — the container core's
  // throughput drifts on a seconds scale, and round-robin rounds expose every
  // config to the same drift instead of penalizing whichever ran during a
  // slow stretch.
  const unsigned kWorkers[] = {1, 2, 4};
  const std::size_t kCaps[] = {1, 4, 9};
  const pd::sparse::CsrF64& matrix = beam.matrix;
  std::vector<std::unique_ptr<pd::service::DoseService>> services;
  std::vector<ConfigResult> results;
  for (const unsigned workers : kWorkers) {
    for (const std::size_t cap : kCaps) {
      services.push_back(std::make_unique<pd::service::DoseService>(
          make_config(workers, cap)));
      services.back()->register_plan(
          "liver1", [&matrix] { return pd::sparse::CsrF64(matrix); });
      // Warm-up: build + cache the engine outside every timed window.
      services.back()->submit("liver1", stream.front()).result.get();
      ConfigResult r;
      r.workers = workers;
      r.batch_cap = cap;
      results.push_back(r);
    }
  }
  std::vector<double> best_s(services.size(), 0.0);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < services.size(); ++i) {
      const double elapsed = replay_once(*services[i], stream);
      if (best_s[i] == 0.0 || elapsed < best_s[i]) {
        best_s[i] = elapsed;
      }
    }
  }
  for (std::size_t i = 0; i < services.size(); ++i) {
    const pd::service::ServiceStats stats = services[i]->stats();
    results[i].req_per_s = static_cast<double>(kRequests) / best_s[i];
    results[i].mean_batch = stats.mean_batch_size();
    results[i].p50_ms = stats.p50_latency_ms;
    results[i].p99_ms = stats.p99_latency_ms;
  }
  services.clear();

  // Headline: adaptive batching on (cap 9) vs off (cap 1), one worker — the
  // pure coalescing win with no extra parallelism in the mix.
  double off_rps = 0.0, on_rps = 0.0;
  for (const ConfigResult& r : results) {
    if (r.workers == 1 && r.batch_cap == 1) off_rps = r.req_per_s;
    if (r.workers == 1 && r.batch_cap == 9) on_rps = r.req_per_s;
  }
  const double headline = on_rps / off_rps;

  pd::TextTable table(
      {"workers", "batch cap", "req/s", "mean batch", "p50 ms", "p99 ms"});
  for (const ConfigResult& r : results) {
    table.add_row({std::to_string(r.workers), std::to_string(r.batch_cap),
                   fmt(r.req_per_s, 1), fmt(r.mean_batch, 2),
                   fmt(r.p50_ms, 2), fmt(r.p99_ms, 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "headline: cap 9 vs cap 1 at 1 worker = " << fmt(headline, 2)
            << "x served throughput (doses bitwise identical in every "
               "configuration)\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const ConfigResult& r : results) {
    rows.push_back({beam.label, std::to_string(r.workers),
                    std::to_string(r.batch_cap), fmt(r.req_per_s, 1),
                    fmt(r.mean_batch, 2), fmt(r.p50_ms, 2), fmt(r.p99_ms, 2)});
  }
  pd::bench::write_csv("wallclock_service",
                       {"beam", "workers", "batch_cap", "req_per_s",
                        "mean_batch", "p50_ms", "p99_ms"},
                       rows);

  std::ofstream json("BENCH_service.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_service\",\n";
  json << "  \"beam\": \"" << beam.label << "\",\n";
  json << "  \"scale\": " << scale << ",\n";
  json << "  \"kernel\": \"DoseService -> compute_batch "
          "(native, kHalfDouble)\",\n";
  // DoseEngine auto-enables the analyzer under PROTONDOSE_SIMCHECK; brand the
  // record so scripts/check_bench_results.sh can reject checked-run numbers.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"requests\": " << kRequests << ",\n";
  json << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json << "    {\"workers\": " << r.workers
         << ", \"batch_cap\": " << r.batch_cap
         << ", \"req_per_s\": " << fmt(r.req_per_s, 1)
         << ", \"mean_batch_size\": " << fmt(r.mean_batch, 2)
         << ", \"p50_ms\": " << fmt(r.p50_ms, 2)
         << ", \"p99_ms\": " << fmt(r.p99_ms, 2) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"headline\": {\"workers\": 1, \"batch_cap\": 9, "
          "\"baseline_cap\": 1, \"batched_speedup\": "
       << fmt(headline, 3) << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_service.json\n";
  return 0;
}
