// Ablation B — ELLPACK and SELL-C-sigma storage (the paper's §II-C / §VII
// future work): padding overhead, storage bytes, and modeled performance of
// the half/double computation on each format versus CSR.
//
// ELLPACK pads every row to the global maximum, which the dose matrices'
// heavy-tailed rows make catastrophic; SELL-C-32 with sigma-window sorting
// contains the padding.  Effective GFLOP/s are normalized by the *useful*
// 2·nnz FLOPs so padded work shows up as lost performance.

// A second table compares computing *on* compressed storage (the fast tier,
// docs/fast_tier.md) against inflating it: the fused rsformat
// decompress-SpMV and the native SELL-C-32 kernel versus the bitwise native
// CSR-double kernel, host wall-clock, single thread.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/format_kernels.hpp"
#include "kernels/rsformat_spmv.hpp"
#include "kernels/sellcs_spmv.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/ell.hpp"
#include "sparse/random.hpp"
#include "sparse/sellcs.hpp"

namespace {

double useful_gflops(double nnz, double seconds) {
  return 2.0 * nnz / seconds / 1e9;
}

template <typename Body>
double time_per_call(const Body& body) {
  body();  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < 5 || elapsed < 0.2);
  return elapsed / reps;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_formats",
      "Paper §II-C/§VII future work: ELLPACK and SELL-C-sigma vs CSR", scale);
  const auto beams = pd::bench::load_beams(scale);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::TextTable table({"beam", "CSR GF/s", "ELL GF/s", "SELL-C-32 GF/s",
                       "ELL padding", "SELL padding", "CSR bytes", "ELL bytes",
                       "SELL bytes"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& beam : beams) {
    const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
    const std::vector<double> x(beam.matrix.num_cols, 1.0);
    std::vector<double> y(beam.matrix.num_rows, 0.0);
    const double nnz = static_cast<double>(beam.matrix.nnz());

    const auto csr_run = pd::kernels::run_vector_csr<pd::Half, double>(
        gpu, mh, x, std::span<double>(y));
    auto estimate = [&](const pd::kernels::SpmvRun& run, double mean_work) {
      pd::gpusim::PerfInput in;
      in.stats = run.stats;
      in.config = run.config;
      in.precision = run.precision;
      in.mean_work_per_warp = mean_work;
      return pd::gpusim::estimate_performance(gpu.spec(), in);
    };
    const auto csr_est =
        estimate(csr_run, beam.stats.mean_nnz_per_nonempty_row);

    std::string ell_gf = "OOM guard";
    std::string ell_pad = "-";
    std::string ell_bytes = "-";
    std::vector<std::string> csv_ell = {"nan", "nan", "nan"};
    try {
      const auto ell = pd::sparse::csr_to_ell(mh, 1ull << 28);
      const auto run = pd::kernels::run_ell_spmv<pd::Half, double>(
          gpu, ell, x, std::span<double>(y));
      // Thread-per-row: each warp covers 32 rows; per-warp useful work is the
      // mean over all rows (empty included) times 32.
      const auto est = estimate(run, 32.0 * beam.stats.mean_nnz_per_row);
      ell_gf = pd::fmt_double(useful_gflops(nnz, est.seconds), 1);
      ell_pad = pd::fmt_percent(ell.padding_overhead(), 1);
      ell_bytes = pd::fmt_bytes(static_cast<double>(ell.bytes()));
      csv_ell = {ell_gf, pd::fmt_double(ell.padding_overhead(), 4),
                 std::to_string(ell.bytes())};
    } catch (const pd::Error&) {
      // Padded size exceeded the guard — exactly ELLPACK's failure mode.
    }

    const auto sell = pd::sparse::csr_to_sellcs(mh, 32, 1024);
    const auto sell_run = pd::kernels::run_sellcs_spmv<pd::Half, double>(
        gpu, sell, x, std::span<double>(y));
    const auto sell_est =
        estimate(sell_run, 32.0 * beam.stats.mean_nnz_per_row);
    const double sell_gf = useful_gflops(nnz, sell_est.seconds);

    table.add_row({beam.label, pd::fmt_double(csr_est.gflops, 1), ell_gf,
                   pd::fmt_double(sell_gf, 1), ell_pad,
                   pd::fmt_percent(sell.padding_overhead(), 1),
                   pd::fmt_bytes(static_cast<double>(mh.bytes())), ell_bytes,
                   pd::fmt_bytes(static_cast<double>(sell.bytes()))});
    csv_rows.push_back({beam.label, pd::fmt_double(csr_est.gflops, 2),
                        csv_ell[0], pd::fmt_double(sell_gf, 2), csv_ell[1],
                        pd::fmt_double(sell.padding_overhead(), 4),
                        std::to_string(mh.bytes()), csv_ell[2],
                        std::to_string(sell.bytes())});
  }
  std::cout << table.str() << "\n";
  std::cout << "SELL-C-sigma's sigma-scoped sorting keeps padding low on the "
               "skewed dose matrices, while plain ELLPACK pads every row to "
               "the longest (16k at paper scale) — the reason the paper kept "
               "CSR and deferred these formats to future work.\n\n";
  pd::bench::write_csv("ablation_formats",
                       {"beam", "csr_gflops", "ell_gflops", "sell_gflops",
                        "ell_padding", "sell_padding", "csr_bytes",
                        "ell_bytes", "sell_bytes"},
                       csv_rows);

  // Fused-vs-inflate: the fast tier computes on the compressed containers
  // directly, so the interesting number is host wall-clock against the
  // bitwise native CSR-double kernel it would otherwise inflate back to.
  using pd::kernels::DoseEngine;
  pd::TextTable fused({"beam", "CSR64 us", "fused rs us", "SELL-C-32 us",
                       "rs bytes / CSR64"});
  std::vector<std::vector<std::string>> fused_rows;
  for (const auto& beam : beams) {
    DoseEngine engine(pd::sparse::CsrF64(beam.matrix), gpu.spec(),
                      DoseEngine::Mode::kDouble,
                      pd::kernels::kDefaultVectorTpb,
                      pd::kernels::SpmvFamily::kVector,
                      DoseEngine::Backend::kNative);
    engine.set_native_threads(1);
    pd::Rng rng(17 + beam.matrix.nnz());
    const std::vector<double> w =
        pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);
    const double us_csr = time_per_call([&] { engine.compute(w); }) * 1e6;
    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kRsFormat);
    const double us_rs = time_per_call([&] { engine.compute(w); }) * 1e6;
    const double ratio =
        static_cast<double>(
            pd::kernels::rsformat_streamed_bytes(engine.fast_rs_matrix())) /
        static_cast<double>(beam.matrix.bytes());
    engine.set_tier(DoseEngine::Tier::kFast, DoseEngine::FastFormat::kSellCs);
    const double us_sell = time_per_call([&] { engine.compute(w); }) * 1e6;
    fused.add_row({beam.label, pd::fmt_double(us_csr, 1),
                   pd::fmt_double(us_rs, 1), pd::fmt_double(us_sell, 1),
                   pd::fmt_percent(ratio, 1)});
    fused_rows.push_back({beam.label, pd::fmt_double(us_csr, 1),
                          pd::fmt_double(us_rs, 1), pd::fmt_double(us_sell, 1),
                          pd::fmt_double(ratio, 4)});
  }
  std::cout << fused.str() << "\n";
  std::cout << "fused decode: " << pd::kernels::rsformat_spmv_variant_name()
            << ", SELL-C-32: " << pd::kernels::sellcs_spmv_variant_name(32)
            << " — host wall-clock, 1 thread (see wallclock_fast_tier for "
               "the full record).\n\n";
  pd::bench::write_csv("ablation_formats_fused",
                       {"beam", "us_native_csr64", "us_fused_rsformat",
                        "us_sellcs", "rs_bytes_ratio"},
                       fused_rows);
  return 0;
}
