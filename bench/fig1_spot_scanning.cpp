// Figure 1 — "Illustration of the spot scanning treatment technique", from
// the beam's-eye view: the target outline (the voxels the beam sees), the
// spot lattice covering it with margin, and the serpentine scan path within
// one energy layer.  Rendered as ASCII for liver beam 1.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "common/table.hpp"
#include "phantom/beam.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("fig1_spot_scanning",
                          "Figure 1: beam's-eye view of the spot scan pattern",
                          scale);
  const auto def = pd::cases::liver_case(scale);
  const auto patient = pd::cases::build_phantom(def);
  const auto frame =
      pd::phantom::make_beam_frame(patient, def.gantry_angles_deg[0]);
  pd::phantom::BeamConfig cfg = def.beam_config;
  cfg.gantry_angle_deg = def.gantry_angles_deg[0];
  const auto spots = pd::phantom::scanline_order(
      pd::phantom::generate_spots(patient, frame, cfg));

  // Project target voxels to the BEV for the outline.
  std::map<std::pair<int, int>, char> canvas;
  const auto& g = patient.grid();
  const double cell = cfg.spot_spacing_mm;
  for (std::uint64_t v = 0; v < g.num_voxels(); ++v) {
    if (patient.roi(v) != pd::phantom::Roi::kTarget) continue;
    double u = 0.0, w = 0.0;
    frame.project(g.voxel_center(g.from_linear(v)), u, w);
    canvas[{static_cast<int>(std::lround(u / cell)),
            static_cast<int>(std::lround(w / cell))}] = '.';
  }
  // Spots of the deepest energy layer, numbered along the scan path.
  const double deepest = spots.front().energy_mev;
  int order = 0;
  int layer_spots = 0;
  for (const auto& s : spots) {
    if (s.energy_mev != deepest) continue;
    const char mark = order < 10 ? static_cast<char>('0' + order) : 'x';
    canvas[{static_cast<int>(std::lround(s.u_mm / cell)),
            static_cast<int>(std::lround(s.v_mm / cell))}] = mark;
    ++order;
    ++layer_spots;
  }

  int umin = 0, umax = 0, vmin = 0, vmax = 0;
  for (const auto& [key, _] : canvas) {
    umin = std::min(umin, key.first);
    umax = std::max(umax, key.first);
    vmin = std::min(vmin, key.second);
    vmax = std::max(vmax, key.second);
  }
  std::cout << "Beam's-eye view, liver beam 1, deepest energy layer ("
            << pd::fmt_double(deepest, 1) << " MeV).\n"
            << "'.' = target outline cell, '0'..'9' = first ten spots along "
               "the serpentine scan path, 'x' = remaining spots.\n\n";
  for (int v = vmax; v >= vmin; --v) {
    std::cout << "  ";
    for (int u = umin; u <= umax; ++u) {
      const auto it = canvas.find({u, v});
      std::cout << (it == canvas.end() ? ' ' : it->second);
    }
    std::cout << "\n";
  }

  // Layer summary (the third dimension of Figure 1's spot set).
  std::map<double, int, std::greater<double>> layers;
  for (const auto& s : spots) {
    layers[s.energy_mev]++;
  }
  std::cout << "\nEnergy layers: " << layers.size() << ", spots total "
            << spots.size() << " (deepest layer holds " << layer_spots
            << ").\n";
  pd::TextTable t({"layer", "energy (MeV)", "spots"});
  int idx = 0;
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& [energy, count] : layers) {
    if (idx < 8 || idx + 1 == static_cast<int>(layers.size())) {
      t.add_row({std::to_string(idx), pd::fmt_double(energy, 1),
                 std::to_string(count)});
    } else if (idx == 8) {
      t.add_row({"...", "...", "..."});
    }
    csv_rows.push_back({std::to_string(idx), pd::fmt_double(energy, 2),
                        std::to_string(count)});
    ++idx;
  }
  std::cout << t.str() << "\n";
  pd::bench::write_csv("fig1_spot_scanning", {"layer", "energy_mev", "spots"},
                       csv_rows);
  return 0;
}
