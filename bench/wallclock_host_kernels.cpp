// Real wall-clock benchmarks (google-benchmark) of the host-side components:
// the reference SpMVs, the scratch-array CPU dose engine, format conversions
// and compression.  These complement the simulated-GPU figures with honest
// measured times on this machine.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rsformat/cpu_engine.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/ell.hpp"
#include "sparse/parallel_spmv.hpp"
#include "sparse/reference.hpp"
#include "sparse/sellcs.hpp"

namespace {

const pd::bench::BenchBeam& beam() {
  // A quarter-scale liver beam keeps each iteration in the milliseconds.
  static const pd::bench::BenchBeam kBeam =
      pd::bench::load_case_beams("liver", 0.25).front();
  return kBeam;
}

void BM_ReferenceSpmv(benchmark::State& state) {
  const auto& D = beam().matrix;
  const std::vector<double> x(D.num_cols, 1.0);
  std::vector<double> y(D.num_rows);
  for (auto _ : state) {
    pd::sparse::reference_spmv(D, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(D.nnz()));
}
BENCHMARK(BM_ReferenceSpmv);

void BM_WarpOrderSpmv(benchmark::State& state) {
  const auto& D = beam().matrix;
  const std::vector<double> x(D.num_cols, 1.0);
  std::vector<double> y(D.num_rows);
  for (auto _ : state) {
    pd::sparse::warp_order_spmv(D, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(D.nnz()));
}
BENCHMARK(BM_WarpOrderSpmv);

void BM_ParallelRowSpmv(benchmark::State& state) {
  const auto& D = beam().matrix;
  const std::vector<double> x(D.num_cols, 1.0);
  std::vector<double> y(D.num_rows);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    pd::sparse::parallel_spmv(D, x, y, threads);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(D.nnz()));
}
BENCHMARK(BM_ParallelRowSpmv)->Arg(1)->Arg(2)->Arg(4);

void BM_CpuDoseEngine(benchmark::State& state) {
  static const pd::rsformat::RsMatrix rs =
      pd::rsformat::RsMatrix::from_csr(beam().matrix);
  const std::vector<double> x(rs.num_cols(), 1.0);
  std::vector<double> y(rs.num_rows());
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    pd::rsformat::cpu_compute_dose(rs, x, y, threads);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rs.nnz()));
}
BENCHMARK(BM_CpuDoseEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_CompressToRsFormat(benchmark::State& state) {
  const auto& D = beam().matrix;
  for (auto _ : state) {
    auto rs = pd::rsformat::RsMatrix::from_csr(D);
    benchmark::DoNotOptimize(rs.nnz());
  }
}
BENCHMARK(BM_CompressToRsFormat);

void BM_DecompressToCsr(benchmark::State& state) {
  static const pd::rsformat::RsMatrix rs =
      pd::rsformat::RsMatrix::from_csr(beam().matrix);
  for (auto _ : state) {
    auto csr = rs.to_csr();
    benchmark::DoNotOptimize(csr.nnz());
  }
}
BENCHMARK(BM_DecompressToCsr);

void BM_ConvertToHalf(benchmark::State& state) {
  const auto& D = beam().matrix;
  for (auto _ : state) {
    auto mh = pd::sparse::convert_values<pd::Half>(D);
    benchmark::DoNotOptimize(mh.values.data());
  }
}
BENCHMARK(BM_ConvertToHalf);

void BM_Transpose(benchmark::State& state) {
  const auto& D = beam().matrix;
  for (auto _ : state) {
    auto t = pd::sparse::transpose(D);
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_Transpose);

void BM_SellCsConversion(benchmark::State& state) {
  const auto& D = beam().matrix;
  for (auto _ : state) {
    auto s = pd::sparse::csr_to_sellcs(D, 32, 1024);
    benchmark::DoNotOptimize(s.values.data());
  }
}
BENCHMARK(BM_SellCsConversion);

}  // namespace

BENCHMARK_MAIN();
