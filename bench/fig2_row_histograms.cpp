// Figure 2 — cumulative row-length histograms for liver beam 1 and prostate
// beam 1, plus the structural call-outs the paper makes: the fraction of
// empty rows (~70%), the mean non-zeros per non-empty row, and the fraction
// of non-empty rows shorter than one warp (the kernel's efficiency
// assumption: 5.6% liver / 14.2% prostate at paper scale).

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sparse/stats.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "fig2_row_histograms",
      "Figure 2: cumulative row-length histograms (liver 1, prostate 1)",
      scale);
  const auto beams = pd::bench::load_beams(scale);

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t idx : {std::size_t{0}, std::size_t{4}}) {
    const auto& b = beams[idx];
    std::cout << b.label << ":\n"
              << "  empty rows:                "
              << pd::fmt_percent(b.stats.empty_row_fraction, 1)
              << "   (paper: ~70%)\n"
              << "  mean nnz per non-empty row: "
              << pd::fmt_double(b.stats.mean_nnz_per_nonempty_row, 1) << "\n"
              << "  max row nnz:               " << b.stats.max_row_nnz << "\n"
              << "  non-empty rows < 32 nnz:    "
              << pd::fmt_percent(b.stats.frac_nonempty_below_warp, 1)
              << "   (paper: " << (idx == 0 ? "5.6%" : "14.2%")
              << " at full scale)\n\n";

    pd::TextTable table({"row length <=", "cumulative fraction", "bar"});
    for (const auto& p :
         pd::sparse::cumulative_row_length_histogram(b.stats, 16)) {
      const int bars = static_cast<int>(p.cumulative_fraction * 40.0);
      table.add_row({std::to_string(p.row_length),
                     pd::fmt_percent(p.cumulative_fraction, 1),
                     std::string(bars, '#')});
      csv_rows.push_back({b.label, std::to_string(p.row_length),
                          pd::fmt_double(p.cumulative_fraction, 5)});
    }
    std::cout << table.str() << "\n";
  }
  pd::bench::write_csv("fig2_row_histograms",
                       {"beam", "row_length_le", "cumulative_fraction"},
                       csv_rows);
  return 0;
}
