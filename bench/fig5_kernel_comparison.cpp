// Figure 5 — performance of GPU Baseline / Half-Double / Single on all six
// beams on the A100, plus the RayStation CPU engine, in GFLOP/s and achieved
// DRAM bandwidth.  Also reports the paper's headline ratios (baseline
// speedup up to 4x / avg 3x; GPU-baseline 17x over CPU; Half/Double ~46x)
// from the analytic full-scale model.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "fig5_kernel_comparison",
      "Figure 5: Baseline vs Half/Double vs Single vs CPU on all beams",
      scale);
  const auto beams = pd::bench::load_beams(scale);
  const auto spec = pd::gpusim::make_a100();
  const auto cpu_spec = pd::gpusim::make_i9_7940x();
  pd::gpusim::Gpu gpu(spec);

  pd::TextTable table({"beam", "Baseline GF/s", "Half/Double GF/s",
                       "Single GF/s", "CPU GF/s", "HD BW GB/s", "HD BW frac",
                       "HD/Baseline"});
  std::vector<std::vector<std::string>> csv_rows;
  double speedup_sum = 0.0, speedup_max = 0.0;
  for (const auto& beam : beams) {
    const auto base =
        pd::bench::measure_kernel(gpu, KernelKind::kBaselineRs, beam);
    const auto hd =
        pd::bench::measure_kernel(gpu, KernelKind::kHalfDouble, beam);
    const auto single =
        pd::bench::measure_kernel(gpu, KernelKind::kSingle, beam);
    const auto cpu = pd::gpusim::estimate_cpu_performance(
        cpu_spec, pd::kernels::analytic_cpu_workload(
                      pd::kernels::Workload::from_stats(beam.stats)));
    const double speedup = hd->estimate.gflops / base->estimate.gflops;
    speedup_sum += speedup;
    speedup_max = std::max(speedup_max, speedup);

    table.add_row({beam.label, pd::fmt_double(base->estimate.gflops, 1),
                   pd::fmt_double(hd->estimate.gflops, 1),
                   pd::fmt_double(single->estimate.gflops, 1),
                   pd::fmt_double(cpu.gflops, 1),
                   pd::fmt_double(hd->estimate.dram_gbs, 1),
                   pd::fmt_percent(hd->estimate.bandwidth_fraction, 1),
                   pd::fmt_double(speedup, 2)});
    csv_rows.push_back({beam.label, pd::fmt_double(base->estimate.gflops, 2),
                        pd::fmt_double(hd->estimate.gflops, 2),
                        pd::fmt_double(single->estimate.gflops, 2),
                        pd::fmt_double(cpu.gflops, 2),
                        pd::fmt_double(hd->estimate.dram_gbs, 2),
                        pd::fmt_double(speedup, 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Half/Double speedup over GPU Baseline (simulated, scale "
            << scale << "): max " << pd::fmt_double(speedup_max, 2) << "x, avg "
            << pd::fmt_double(speedup_sum / beams.size(), 2)
            << "x   (paper at full scale: max 4x, avg ~3x)\n\n";

  // Full-scale analytic predictions against the paper's headline numbers.
  std::cout << "Full-scale analytic model (paper Table I workloads):\n";
  pd::TextTable full({"beam", "Baseline GF/s", "Half/Double GF/s",
                      "Single GF/s", "CPU GF/s", "HD BW frac", "HD/Base",
                      "Base/CPU", "HD/CPU"});
  for (const auto& beam : beams) {
    const auto w = pd::kernels::Workload::from_paper(beam.paper);
    const auto base = pd::gpusim::estimate_performance(
        spec, pd::kernels::analytic_perf_input(KernelKind::kBaselineRs, w));
    const auto hd = pd::gpusim::estimate_performance(
        spec, pd::kernels::analytic_perf_input(KernelKind::kHalfDouble, w));
    const auto single = pd::gpusim::estimate_performance(
        spec, pd::kernels::analytic_perf_input(KernelKind::kSingle, w));
    const auto cpu = pd::gpusim::estimate_cpu_performance(
        cpu_spec, pd::kernels::analytic_cpu_workload(w));
    full.add_row({beam.label, pd::fmt_double(base.gflops, 1),
                  pd::fmt_double(hd.gflops, 1), pd::fmt_double(single.gflops, 1),
                  pd::fmt_double(cpu.gflops, 1),
                  pd::fmt_percent(hd.bandwidth_fraction, 1),
                  pd::fmt_double(hd.gflops / base.gflops, 2),
                  pd::fmt_double(base.gflops / cpu.gflops, 1),
                  pd::fmt_double(hd.gflops / cpu.gflops, 1)});
  }
  std::cout << full.str()
            << "\nPaper headlines at full scale: Half/Double up to 420 GFLOP/s "
               "at 80-87% of peak BW on liver; prostate ~30% lower; GPU "
               "Baseline ~17x over CPU; Half/Double ~46x over CPU.\n\n";

  pd::bench::write_csv("fig5_kernel_comparison",
                       {"beam", "baseline_gflops", "half_double_gflops",
                        "single_gflops", "cpu_gflops", "hd_bw_gbs",
                        "hd_over_baseline"},
                       csv_rows);
  return 0;
}
