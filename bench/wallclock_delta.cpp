// Wallclock of the incremental delta engine (docs/delta_engine.md) on the
// six Table I beams: compute_delta / apply_delta against a full bitwise
// recompute, across changed-weight fractions {0.1%, 1%, 10%}.
//
// The delta path streams only the changed columns' CSC entries (kFast) or
// the affected rows' CSR entries (kBitwise) instead of the whole matrix, so
// cost is proportional to |Δw| nnz.  Two timings per mode: `us_delta_*`
// includes the result-vector copy (the compute_delta API), `us_apply_*` is
// the in-place apply_delta — the shape the optimizer warm-start loop issues.
// In-place timing uses weight alternation (w -> w' -> w -> ...) so every rep
// performs one same-sized update; in bitwise mode the dose returns to the
// exact base bits every second rep.  Results land in
// bench_results/wallclock_delta.csv and BENCH_delta.json (schema-checked by
// scripts/check_bench_results.sh); the headline is the fast-mode in-place
// speedup over full recompute at 1% changed spots on Liver 1 (target >= 5x).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/simcheck.hpp"
#include "kernels/delta_spmv.hpp"
#include "kernels/dose_engine.hpp"
#include "kernels/tuner.hpp"
#include "sparse/random.hpp"

namespace {

using pd::kernels::DoseEngine;

std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << std::fixed << v;
  return os.str();
}

/// Warm-up + "at least 5 reps and 0.2 s" timing loop; seconds per call.
template <typename Body>
double time_per_call(const Body& body) {
  body();
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    body();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < 5 || elapsed < 0.2);
  return elapsed / reps;
}

struct CaseResult {
  std::string beam;
  double changed_frac = 0.0;
  std::uint64_t changed_cols = 0;
  std::uint64_t delta_nnz = 0;
  std::uint64_t touched_rows = 0;
  std::uint64_t matrix_nnz = 0;
  double us_full = 0.0;
  double us_delta_bitwise = 0.0;
  double us_delta_fast = 0.0;
  double us_apply_bitwise = 0.0;
  double us_apply_fast = 0.0;
  double bitwise_speedup() const { return us_full / us_apply_bitwise; }
  double fast_speedup() const { return us_full / us_apply_fast; }
};

/// Perturb exactly `k` distinct weights multiplicatively.
std::vector<double> perturb_k(const std::vector<double>& w, std::uint64_t k,
                              pd::Rng& rng) {
  std::vector<double> w_new = w;
  std::vector<std::uint8_t> used(w.size(), 0);
  for (std::uint64_t changed = 0; changed < k;) {
    const std::size_t j = rng.uniform_index(w.size());
    if (used[j] == 0) {
      used[j] = 1;
      w_new[j] = w[j] * 1.1 + 0.01;
      ++changed;
    }
  }
  return w_new;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "wallclock_delta",
      "incremental delta engine vs full bitwise recompute", scale);
  const auto beams = pd::bench::load_beams(scale);
  const std::vector<double> fracs = {0.001, 0.01, 0.1};

  std::vector<CaseResult> results;
  double headline_fast = 0.0, headline_bitwise = 0.0;
  std::string headline_beam;
  for (const auto& beam : beams) {
    DoseEngine engine(pd::sparse::CsrF64(beam.matrix), pd::gpusim::make_a100(),
                      DoseEngine::Mode::kHalfDouble,
                      pd::kernels::kDefaultVectorTpb,
                      pd::kernels::SpmvFamily::kVector,
                      DoseEngine::Backend::kNative);
    engine.set_native_threads(1);
    pd::Rng rng(2048 + beam.matrix.nnz());
    const std::vector<double> w =
        pd::sparse::random_vector(rng, beam.matrix.num_cols, 0.5, 2.0);
    const std::vector<double> base = engine.compute(w);
    (void)engine.csc_sidecar();  // build outside the timed region

    for (const double frac : fracs) {
      const std::uint64_t k = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 frac * static_cast<double>(beam.matrix.num_cols)));
      const std::vector<double> w_new = perturb_k(w, k, rng);

      CaseResult r;
      r.beam = beam.label;
      r.changed_frac = frac;
      r.matrix_nnz = beam.matrix.nnz();
      r.us_full = time_per_call([&] { engine.compute(w_new); }) * 1e6;
      r.us_delta_bitwise = time_per_call([&] {
                             engine.compute_delta(
                                 base, w, w_new,
                                 DoseEngine::DeltaMode::kBitwise);
                           }) *
                           1e6;
      r.changed_cols = engine.last_delta().changed_cols;
      r.delta_nnz = engine.last_delta().delta_nnz;
      r.touched_rows = engine.last_delta().touched_rows;
      r.us_delta_fast = time_per_call([&] {
                          engine.compute_delta(base, w, w_new,
                                               DoseEngine::DeltaMode::kFast);
                        }) *
                        1e6;
      // In-place: alternate w -> w_new -> w so every rep is one update of
      // the same footprint and the dose never drifts from reusable state.
      std::vector<double> dose = base;
      bool forward = true;
      const auto alternate = [&](DoseEngine::DeltaMode mode) {
        if (forward) {
          engine.apply_delta(dose, w, w_new, mode);
        } else {
          engine.apply_delta(dose, w_new, w, mode);
        }
        forward = !forward;
      };
      r.us_apply_bitwise = time_per_call([&] {
                             alternate(DoseEngine::DeltaMode::kBitwise);
                           }) *
                           1e6;
      dose = base;
      forward = true;
      r.us_apply_fast =
          time_per_call([&] { alternate(DoseEngine::DeltaMode::kFast); }) *
          1e6;
      results.push_back(r);

      if (frac == 0.01 && headline_beam.empty()) {
        headline_beam = r.beam;
        headline_fast = r.fast_speedup();
        headline_bitwise = r.bitwise_speedup();
      }
    }
  }

  pd::TextTable table({"beam", "frac", "dnnz/nnz", "full us", "bw delta us",
                       "fast delta us", "bw x", "fast x"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& r : results) {
    const double nnz_ratio = static_cast<double>(r.delta_nnz) /
                             static_cast<double>(r.matrix_nnz);
    table.add_row({r.beam, fmt(r.changed_frac, 3), pd::fmt_percent(nnz_ratio, 2),
                   fmt(r.us_full, 1), fmt(r.us_apply_bitwise, 1),
                   fmt(r.us_apply_fast, 1), fmt(r.bitwise_speedup(), 1),
                   fmt(r.fast_speedup(), 1)});
    csv_rows.push_back(
        {r.beam, fmt(r.changed_frac, 4), std::to_string(r.changed_cols),
         std::to_string(r.delta_nnz), std::to_string(r.touched_rows),
         fmt(r.us_full, 2), fmt(r.us_delta_bitwise, 2),
         fmt(r.us_delta_fast, 2), fmt(r.us_apply_bitwise, 2),
         fmt(r.us_apply_fast, 2), fmt(r.bitwise_speedup(), 2),
         fmt(r.fast_speedup(), 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "delta kernel: " << pd::kernels::delta_spmv_variant_name()
            << "; headline (" << headline_beam << ", 1% changed): fast "
            << fmt(headline_fast, 1) << "x, bitwise "
            << fmt(headline_bitwise, 1) << "x over full recompute.\n\n";
  pd::bench::write_csv(
      "wallclock_delta",
      {"beam", "changed_frac", "changed_cols", "delta_nnz", "touched_rows",
       "us_full", "us_delta_bitwise", "us_delta_fast", "us_apply_bitwise",
       "us_apply_fast", "bitwise_speedup", "fast_speedup"},
      csv_rows);

  std::ofstream json("BENCH_delta.json");
  json << "{\n";
  json << "  \"bench\": \"wallclock_delta\",\n";
  json << "  \"scale\": " << scale << ",\n";
  // The delta path is host-native; brand the record anyway so
  // scripts/check_bench_results.sh treats all BENCH json uniformly.
  json << "  \"simcheck\": "
       << (pd::gpusim::simcheck_env_enabled() ? "true" : "false") << ",\n";
  json << "  \"variant\": \"" << pd::kernels::delta_spmv_variant_name()
       << "\",\n";
  json << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"beam\": \"" << r.beam << "\""
         << ", \"changed_frac\": " << fmt(r.changed_frac, 4)
         << ", \"changed_cols\": " << r.changed_cols
         << ", \"delta_nnz\": " << r.delta_nnz
         << ", \"touched_rows\": " << r.touched_rows
         << ", \"us_full\": " << fmt(r.us_full, 2)
         << ", \"us_delta_bitwise\": " << fmt(r.us_delta_bitwise, 2)
         << ", \"us_delta_fast\": " << fmt(r.us_delta_fast, 2)
         << ", \"us_apply_bitwise\": " << fmt(r.us_apply_bitwise, 2)
         << ", \"us_apply_fast\": " << fmt(r.us_apply_fast, 2)
         << ", \"bitwise_speedup\": " << fmt(r.bitwise_speedup(), 2)
         << ", \"fast_speedup\": " << fmt(r.fast_speedup(), 2) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"headline\": {\"beam\": \"" << headline_beam
       << "\", \"changed_frac\": 0.01, \"fast_speedup\": "
       << fmt(headline_fast, 2)
       << ", \"bitwise_speedup\": " << fmt(headline_bitwise, 2) << "}\n";
  json << "}\n";
  std::cout << "wrote BENCH_delta.json\n";
  return 0;
}
