// Ablation E — the 16-bit value format choice.  The paper stores matrix
// entries in IEEE binary16 to match the CPU code's 16 bits; two other 16-bit
// encodings exist in this code base: bfloat16 (truncated binary32) and
// rsformat's per-column fixed point.  All three cost the same memory traffic
// (hence identical modeled performance) — what differs is the dose error
// they introduce, measured here against the exact double-precision dose.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cases/cases.hpp"
#include "common/table.hpp"
#include "fp16/bfloat16.hpp"
#include "opt/gamma.hpp"
#include "phantom/grid.hpp"
#include "kernels/vector_csr.hpp"
#include "rsformat/cpu_engine.hpp"
#include "rsformat/rsmatrix.hpp"
#include "sparse/convert.hpp"
#include "sparse/reference.hpp"

namespace {

struct ErrorStats {
  double max_rel = 0.0;
  double mean_rel = 0.0;
};

ErrorStats dose_error(const std::vector<double>& approx,
                      const std::vector<double>& exact) {
  ErrorStats s;
  double sum = 0.0;
  std::size_t counted = 0;
  double max_dose = 0.0;
  for (const double d : exact) max_dose = std::max(max_dose, d);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] < 1e-6 * max_dose) {
      continue;  // relative error meaningless in near-zero voxels
    }
    const double rel = std::fabs(approx[i] - exact[i]) / exact[i];
    s.max_rel = std::max(s.max_rel, rel);
    sum += rel;
    ++counted;
  }
  s.mean_rel = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
  return s;
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_value_type",
      "16-bit matrix storage: IEEE half vs bfloat16 vs fixed point", scale);
  const auto beams = pd::bench::load_beams(scale);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::TextTable table({"beam", "half max err", "half mean err",
                       "bf16 max err", "bf16 mean err", "fixed max err",
                       "fixed mean err", "half g(1%,1mm)", "bf16 g(1%,1mm)",
                       "fixed g(1%,1mm)"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& beam : beams) {
    const auto& D = beam.matrix;
    const std::vector<double> x(D.num_cols, 1.0);
    std::vector<double> exact(D.num_rows);
    pd::sparse::reference_spmv(D, x, exact);

    // IEEE half (the paper's choice).
    const auto mh = pd::sparse::convert_values<pd::Half>(D);
    std::vector<double> y_half(D.num_rows);
    pd::kernels::run_vector_csr<pd::Half, double>(gpu, mh, x,
                                                  std::span<double>(y_half));

    // bfloat16.
    const auto mb = pd::sparse::convert_values<pd::Bfloat16>(D);
    std::vector<double> y_bf(D.num_rows);
    pd::kernels::run_vector_csr<pd::Bfloat16, double>(gpu, mb, x,
                                                      std::span<double>(y_bf));

    // rsformat's per-column 16-bit fixed point.
    const auto rs = pd::rsformat::RsMatrix::from_csr(D);
    std::vector<double> y_fixed(D.num_rows);
    pd::rsformat::cpu_compute_dose_serial(rs, x, y_fixed);

    const ErrorStats e_half = dose_error(y_half, exact);
    const ErrorStats e_bf = dose_error(y_bf, exact);
    const ErrorStats e_fixed = dose_error(y_fixed, exact);

    // Clinical acceptance: gamma(1%, 1mm) pass rate against the exact dose.
    // Rebuild the dose grid geometry of this beam's case.
    const auto def = beam.label.find("Liver") != std::string::npos
                         ? pd::cases::liver_case(scale)
                         : pd::cases::prostate_case(scale);
    const pd::phantom::VoxelGrid vg(def.nx, def.ny, def.nz, def.spacing_mm);
    const auto g_half = pd::opt::gamma_analysis(vg, exact, y_half);
    const auto g_bf = pd::opt::gamma_analysis(vg, exact, y_bf);
    const auto g_fixed = pd::opt::gamma_analysis(vg, exact, y_fixed);

    table.add_row({beam.label, pd::fmt_sci(e_half.max_rel, 2),
                   pd::fmt_sci(e_half.mean_rel, 2), pd::fmt_sci(e_bf.max_rel, 2),
                   pd::fmt_sci(e_bf.mean_rel, 2), pd::fmt_sci(e_fixed.max_rel, 2),
                   pd::fmt_sci(e_fixed.mean_rel, 2),
                   pd::fmt_percent(g_half.pass_rate, 2),
                   pd::fmt_percent(g_bf.pass_rate, 2),
                   pd::fmt_percent(g_fixed.pass_rate, 2)});
    csv_rows.push_back({beam.label, pd::fmt_sci(e_half.max_rel, 4),
                        pd::fmt_sci(e_half.mean_rel, 4),
                        pd::fmt_sci(e_bf.max_rel, 4),
                        pd::fmt_sci(e_bf.mean_rel, 4),
                        pd::fmt_sci(e_fixed.max_rel, 4),
                        pd::fmt_sci(e_fixed.mean_rel, 4)});
  }
  std::cout << table.str() << "\n";
  std::cout << "All three formats stream 2 bytes per entry, so the modeled "
               "kernel performance is identical; IEEE half carries ~8x finer "
               "relative precision than bfloat16 in the dose value range "
               "(10 vs 7 mantissa bits), which is why the paper's choice is "
               "the right one for a clinically-validated engine.\n\n";
  pd::bench::write_csv("ablation_value_type",
                       {"beam", "half_max", "half_mean", "bf16_max",
                        "bf16_mean", "fixed_max", "fixed_mean"},
                       csv_rows);
  return 0;
}
