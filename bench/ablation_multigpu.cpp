// Ablation F — multi-GPU row-block scaling.  The paper's liver matrices are
// 7-11 GB after half compression, so a full four-beam liver plan plus
// optimizer state outgrows one 40 GB A100.  Row-block partitioning solves
// this without giving up reproducibility: each device owns a disjoint
// dose-grid slice (no inter-device reduction, results bit-identical to the
// single-device kernel).  This bench partitions liver beam 1, runs the
// Half/Double kernel on each block in the simulator, and reports modeled
// strong scaling plus paper-scale memory-per-GPU.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"
#include "sparse/partition.hpp"

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_multigpu",
      "Row-block multi-GPU scaling of the Half/Double kernel (liver beam 1)",
      scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams[0];
  const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
  const std::vector<double> x(beam.matrix.num_cols, 1.0);

  // Single-device reference.
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());
  std::vector<double> y(beam.matrix.num_rows);
  const auto full_run = pd::kernels::run_vector_csr<pd::Half, double>(
      gpu, mh, x, std::span<double>(y));
  pd::gpusim::PerfInput full_in;
  full_in.stats = full_run.stats;
  full_in.config = full_run.config;
  full_in.mean_work_per_warp = beam.stats.mean_nnz_per_nonempty_row;
  const double t1 =
      pd::gpusim::estimate_performance(gpu.spec(), full_in).seconds;

  // Paper-scale storage of liver beam 1 (half values + u32 columns).
  const double paper_bytes = 6.0 * beam.paper.nnz + 4.0 * (beam.paper.rows + 1);

  pd::TextTable table({"GPUs", "imbalance", "modeled time", "speedup",
                       "efficiency", "paper-scale GiB/GPU"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const auto part = pd::sparse::balanced_row_partition(mh, k);
    double slowest = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto block = pd::sparse::extract_row_block(
          mh, part.boundaries[i], part.boundaries[i + 1]);
      std::vector<double> yb(block.num_rows);
      const auto run = pd::kernels::run_vector_csr<pd::Half, double>(
          gpu, block, x, std::span<double>(yb));
      pd::gpusim::PerfInput in;
      in.stats = run.stats;
      in.config = run.config;
      const auto bstats = pd::sparse::compute_stats(block);
      in.mean_work_per_warp = bstats.mean_nnz_per_nonempty_row;
      slowest = std::max(
          slowest, pd::gpusim::estimate_performance(gpu.spec(), in).seconds);
    }
    const double speedup = t1 / slowest;
    table.add_row({std::to_string(k),
                   pd::fmt_double(pd::sparse::partition_imbalance(mh, part), 3),
                   pd::fmt_sci(slowest, 3), pd::fmt_double(speedup, 2),
                   pd::fmt_percent(speedup / static_cast<double>(k), 1),
                   pd::fmt_double(paper_bytes / k / (1ull << 30), 2)});
    csv_rows.push_back({std::to_string(k),
                        pd::fmt_double(pd::sparse::partition_imbalance(mh, part), 4),
                        pd::fmt_sci(slowest, 4), pd::fmt_double(speedup, 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Row blocks need no inter-device reduction (the dose slices "
               "are disjoint), so the partitioned result is bit-identical to "
               "the single-device kernel — the §II-D guarantee survives "
               "scale-out.  Efficiency falls as per-device grids shrink below "
               "a full wave, the same small-matrix effect as the prostate "
               "cases in Figure 5.\n\n";
  pd::bench::write_csv("ablation_multigpu",
                       {"gpus", "imbalance", "modeled_time_s", "speedup"},
                       csv_rows);
  return 0;
}
