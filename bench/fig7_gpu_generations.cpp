// Figure 7 — the Half/Double kernel across GPU generations (A100, V100,
// P100): GFLOP/s, achieved bandwidth, and the fraction of each device's peak
// (the paper: 80-88% on A100/V100, ~41% on P100; A100 1.5-2x V100;
// V100 ~2.5x P100).

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("fig7_gpu_generations",
                          "Figure 7: Half/Double on A100 / V100 / P100",
                          scale);
  const auto beams = pd::bench::load_beams(scale);
  const std::vector<pd::gpusim::DeviceSpec> devices = {
      pd::gpusim::make_a100(), pd::gpusim::make_v100(), pd::gpusim::make_p100()};

  pd::TextTable table({"beam", "A100 GF/s", "V100 GF/s", "P100 GF/s",
                       "A100 BW frac", "V100 BW frac", "P100 BW frac",
                       "A100/V100", "V100/P100"});
  std::vector<std::vector<std::string>> csv_rows;
  double sum_av = 0.0, sum_vp = 0.0;
  for (const auto& beam : beams) {
    std::vector<double> gflops, frac;
    for (const auto& spec : devices) {
      pd::gpusim::Gpu gpu(spec);
      const auto m = pd::bench::measure_kernel(gpu, KernelKind::kHalfDouble,
                                               beam);
      gflops.push_back(m->estimate.gflops);
      frac.push_back(m->estimate.bandwidth_fraction);
    }
    const double av = gflops[0] / gflops[1];
    const double vp = gflops[1] / gflops[2];
    sum_av += av;
    sum_vp += vp;
    table.add_row({beam.label, pd::fmt_double(gflops[0], 1),
                   pd::fmt_double(gflops[1], 1), pd::fmt_double(gflops[2], 1),
                   pd::fmt_percent(frac[0], 1), pd::fmt_percent(frac[1], 1),
                   pd::fmt_percent(frac[2], 1), pd::fmt_double(av, 2),
                   pd::fmt_double(vp, 2)});
    csv_rows.push_back({beam.label, pd::fmt_double(gflops[0], 2),
                        pd::fmt_double(gflops[1], 2),
                        pd::fmt_double(gflops[2], 2),
                        pd::fmt_double(frac[0], 3), pd::fmt_double(frac[1], 3),
                        pd::fmt_double(frac[2], 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Average generation ratios: A100/V100 "
            << pd::fmt_double(sum_av / beams.size(), 2) << "x (paper: 1.5-2x), "
            << "V100/P100 " << pd::fmt_double(sum_vp / beams.size(), 2)
            << "x (paper: ~2.5x).  The P100 gap exceeds its bandwidth deficit "
               "because it only achieves ~41-45% of peak (paper defers the "
               "cause to future work; we encode the observed fraction).\n\n";
  // Forward prediction beyond the paper: the same kernel on an H100 model.
  {
    pd::gpusim::Gpu h100(pd::gpusim::make_h100());
    pd::gpusim::Gpu a100(pd::gpusim::make_a100());
    const auto mh = pd::bench::measure_kernel(h100, KernelKind::kHalfDouble,
                                              beams[0]);
    const auto ma = pd::bench::measure_kernel(a100, KernelKind::kHalfDouble,
                                              beams[0]);
    std::cout << "Model prediction (not in the paper): H100 would reach "
              << pd::fmt_double(mh->estimate.gflops, 1)
              << " GFLOP/s on liver 1 — "
              << pd::fmt_double(mh->estimate.gflops / ma->estimate.gflops, 2)
              << "x the A100, tracking the 2.15x bandwidth step as the "
                 "bandwidth-bound analysis predicts.\n\n";
  }

  pd::bench::write_csv("fig7_gpu_generations",
                       {"beam", "a100_gflops", "v100_gflops", "p100_gflops",
                        "a100_bw_frac", "v100_bw_frac", "p100_bw_frac"},
                       csv_rows);
  return 0;
}
