// Figure 6 — single-precision comparison of our vector kernel against the
// cuSPARSE-like (adaptive) and Ginkgo-like (classical) implementations on
// all six beams, A100: GFLOP/s and achieved bandwidth.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "fig6_library_comparison",
      "Figure 6: our Single vs cuSPARSE-like vs Ginkgo-like (fp32, A100)",
      scale);
  const auto beams = pd::bench::load_beams(scale);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::TextTable table({"beam", "Ours GF/s", "cuSPARSE GF/s", "Ginkgo GF/s",
                       "Ours GB/s", "cuSPARSE GB/s", "Ginkgo GB/s"});
  std::vector<std::vector<std::string>> csv_rows;
  int ours_wins = 0;
  for (const auto& beam : beams) {
    const auto ours = pd::bench::measure_kernel(gpu, KernelKind::kSingle, beam);
    const auto cusp =
        pd::bench::measure_kernel(gpu, KernelKind::kCuSparseLike, beam);
    const auto ginkgo =
        pd::bench::measure_kernel(gpu, KernelKind::kGinkgoLike, beam);
    if (ours->estimate.gflops >= cusp->estimate.gflops &&
        ours->estimate.gflops >= ginkgo->estimate.gflops) {
      ++ours_wins;
    }
    table.add_row({beam.label, pd::fmt_double(ours->estimate.gflops, 1),
                   pd::fmt_double(cusp->estimate.gflops, 1),
                   pd::fmt_double(ginkgo->estimate.gflops, 1),
                   pd::fmt_double(ours->estimate.dram_gbs, 1),
                   pd::fmt_double(cusp->estimate.dram_gbs, 1),
                   pd::fmt_double(ginkgo->estimate.dram_gbs, 1)});
    csv_rows.push_back({beam.label, pd::fmt_double(ours->estimate.gflops, 2),
                        pd::fmt_double(cusp->estimate.gflops, 2),
                        pd::fmt_double(ginkgo->estimate.gflops, 2),
                        pd::fmt_double(ours->estimate.dram_gbs, 2),
                        pd::fmt_double(cusp->estimate.dram_gbs, 2),
                        pd::fmt_double(ginkgo->estimate.dram_gbs, 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Our kernel matches or beats the library kernels on "
            << ours_wins << "/" << beams.size()
            << " beams (paper: matches or beats on all evaluated matrices; "
               "bandwidth tracks GFLOP/s closely because SpMV is memory-"
               "bound).\n\n";
  pd::bench::write_csv("fig6_library_comparison",
                       {"beam", "ours_gflops", "cusparse_gflops",
                        "ginkgo_gflops", "ours_gbs", "cusparse_gbs",
                        "ginkgo_gbs"},
                       csv_rows);
  return 0;
}
