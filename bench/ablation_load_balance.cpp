// Ablation G — load-balanced kernel variants that keep §II-D
// reproducibility.  The paper's warp-per-row kernel leaves one warp alone
// with each multi-thousand-nnz liver row; two classic rebalancing schemes
// are implemented here WITHOUT atomics (both bitwise schedule-independent):
//   * row splitting (two-phase fixed-slot partials, kernels/rowsplit_csr),
//   * CSR-Stream through shared memory (block tiles, kernels/stream_csr).
// The bench reports what each buys and costs on the generated beams.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "kernels/rowsplit_csr.hpp"
#include "kernels/stream_csr.hpp"
#include "kernels/vector_csr.hpp"
#include "sparse/convert.hpp"

namespace {

pd::gpusim::PerfEstimate estimate(pd::gpusim::Gpu& gpu,
                                  const pd::kernels::SpmvRun& run,
                                  double mean_work) {
  pd::gpusim::PerfInput in;
  in.stats = run.stats;
  in.config = run.config;
  in.precision = run.precision;
  in.mean_work_per_warp = mean_work;
  return pd::gpusim::estimate_performance(gpu.spec(), in);
}

}  // namespace

int main() {
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner(
      "ablation_load_balance",
      "Reproducible load balancing: warp-per-row vs row-split vs CSR-Stream",
      scale);
  const auto beams = pd::bench::load_beams(scale);
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  pd::TextTable table({"beam", "vector GF/s", "rowsplit GF/s", "stream GF/s",
                       "vector SIMT", "stream SIMT", "rowsplit extra DRAM",
                       "stream shared ops"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& beam : beams) {
    const auto mh = pd::sparse::convert_values<pd::Half>(beam.matrix);
    const std::vector<double> x(beam.matrix.num_cols, 1.0);
    std::vector<double> y(beam.matrix.num_rows);
    const double mean_work = beam.stats.mean_nnz_per_nonempty_row;

    const auto vec_run = pd::kernels::run_vector_csr<pd::Half, double>(
        gpu, mh, x, std::span<double>(y));
    const auto vec_est = estimate(gpu, vec_run, mean_work);

    const auto split_plan = pd::kernels::build_row_split_plan(mh, 512);
    const auto split_run = pd::kernels::run_rowsplit_csr<pd::Half, double>(
        gpu, mh, split_plan, x, std::span<double>(y));
    // After splitting, per-warp work is bounded by the chunk: the MLP driver
    // becomes min(mean, chunk).
    const auto split_est =
        estimate(gpu, split_run, std::min(mean_work, 512.0));

    const auto stream_plan = pd::kernels::build_stream_plan(mh, 2048);
    const auto stream_run = pd::kernels::run_stream_csr<pd::Half, double>(
        gpu, mh, stream_plan, x, std::span<double>(y));
    const auto stream_est = estimate(gpu, stream_run, mean_work);

    table.add_row(
        {beam.label, pd::fmt_double(vec_est.gflops, 1),
         pd::fmt_double(split_est.gflops, 1),
         pd::fmt_double(stream_est.gflops, 1),
         pd::fmt_percent(vec_run.stats.compute.simt_efficiency(), 1),
         pd::fmt_percent(stream_run.stats.compute.simt_efficiency(), 1),
         pd::fmt_percent(split_run.stats.dram_bytes() /
                                 vec_run.stats.dram_bytes() -
                             1.0,
                         1),
         std::to_string(stream_run.stats.shared.accesses)});
    csv_rows.push_back({beam.label, pd::fmt_double(vec_est.gflops, 2),
                        pd::fmt_double(split_est.gflops, 2),
                        pd::fmt_double(stream_est.gflops, 2)});
  }
  std::cout << table.str() << "\n";
  std::cout << "All three variants return bitwise identical results under "
               "every GPU schedule (tests pin this).  At this scale the "
               "paper's plain warp-per-row kernel holds its own — row "
               "splitting pays partial-sum traffic and CSR-Stream pays the "
               "shared-memory round trip; their payoff is the bounded "
               "per-warp work, which matters for the full-scale 16k-nnz "
               "liver tail rows.\n\n";
  pd::bench::write_csv("ablation_load_balance",
                       {"beam", "vector_gflops", "rowsplit_gflops",
                        "stream_gflops"},
                       csv_rows);
  return 0;
}
