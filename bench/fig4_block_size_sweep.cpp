// Figure 4 — execution-configuration sweep on liver beam 1: GFLOP/s for
// 32..1024 threads per block, for the Half/Double, Single and GPU Baseline
// kernels.  The paper picks 512 for its kernels and 128 for the baseline.

#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "kernels/tuner.hpp"

int main() {
  using pd::kernels::KernelKind;
  const double scale = pd::bench::bench_scale();
  pd::bench::print_banner("fig4_block_size_sweep",
                          "Figure 4: threads-per-block sweep on liver beam 1",
                          scale);
  const auto beams = pd::bench::load_case_beams("liver", scale);
  const auto& beam = beams[0];
  pd::gpusim::Gpu gpu(pd::gpusim::make_a100());

  const std::vector<KernelKind> kinds = {
      KernelKind::kHalfDouble, KernelKind::kSingle, KernelKind::kBaselineRs};

  pd::TextTable table({"threads/block", "Half/Double GF/s", "Single GF/s",
                       "Baseline GF/s", "HD occupancy"});
  std::vector<std::vector<std::string>> csv_rows;
  std::vector<std::vector<double>> gflops(pd::kernels::default_block_sizes().size());
  std::vector<double> occupancy;

  const auto sizes = pd::kernels::default_block_sizes();
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    for (const KernelKind kind : kinds) {
      const auto m = pd::bench::measure_kernel(gpu, kind, beam, sizes[si]);
      gflops[si].push_back(m ? m->estimate.gflops : 0.0);
      if (kind == KernelKind::kHalfDouble) {
        occupancy.push_back(m->estimate.occupancy);
      }
    }
  }

  unsigned best_hd = 0;
  double best_hd_gflops = -1.0;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    if (gflops[si][0] > best_hd_gflops) {
      best_hd_gflops = gflops[si][0];
      best_hd = sizes[si];
    }
    table.add_row({std::to_string(sizes[si]), pd::fmt_double(gflops[si][0], 1),
                   pd::fmt_double(gflops[si][1], 1),
                   pd::fmt_double(gflops[si][2], 1),
                   pd::fmt_percent(occupancy[si], 0)});
    csv_rows.push_back({std::to_string(sizes[si]),
                        pd::fmt_double(gflops[si][0], 2),
                        pd::fmt_double(gflops[si][1], 2),
                        pd::fmt_double(gflops[si][2], 2),
                        pd::fmt_double(occupancy[si], 3)});
  }
  std::cout << table.str() << "\n";
  std::cout << "Best Half/Double configuration: " << best_hd
            << " threads/block (paper: 512).\n"
            << "Baseline varies little with block size — its time is atomic-"
               "throughput-bound, not occupancy-bound (paper §V-A).\n\n";
  pd::bench::write_csv("fig4_block_size_sweep",
                       {"threads_per_block", "half_double_gflops",
                        "single_gflops", "baseline_gflops", "hd_occupancy"},
                       csv_rows);
  return 0;
}
