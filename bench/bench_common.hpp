#pragma once
// Shared infrastructure for the per-table / per-figure benchmark binaries.
//
// Every bench loads the same six Table I beams (through a binary on-disk
// cache so the Monte Carlo generation runs once per scale), runs kernels on
// the simulated device, and reports both a human-readable table and a CSV
// under bench_results/.

#include <optional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/perf.hpp"
#include "kernels/analytic.hpp"
#include "kernels/spmv_common.hpp"
#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace pd::bench {

struct BenchBeam {
  std::string label;               ///< Table I row name, e.g. "Liver 1".
  sparse::CsrF64 matrix;
  sparse::MatrixStats stats;
  sparse::PaperMatrixInfo paper;   ///< Full-scale published numbers.
};

/// Scale from PROTONDOSE_SCALE (default 1.0 — the repository mini default).
double bench_scale();

/// Load (or generate + cache) all six beams at `scale`.  The cache lives in
/// ./protondose_bench_cache and uses the library's binary matrix format.
std::vector<BenchBeam> load_beams(double scale);

/// Load only the named case's beams ("liver" / "prostate"), same cache.
std::vector<BenchBeam> load_case_beams(const std::string& name, double scale);

/// Measurement of one kernel on one beam: simulator counters + model output.
struct Measurement {
  kernels::KernelKind kind;
  kernels::SpmvRun run;
  gpusim::PerfEstimate estimate;
};

/// Execute the kernel variant on the simulated device and estimate its
/// performance.  threads_per_block == 0 selects the paper's default for the
/// kernel.  Unsupported combinations (e.g. u16 columns on a matrix with more
/// than 65536 columns) return std::nullopt.
std::optional<Measurement> measure_kernel(gpusim::Gpu& gpu,
                                          kernels::KernelKind kind,
                                          const BenchBeam& beam,
                                          unsigned threads_per_block = 0);

/// Write rows to bench_results/<name>.csv (directory created on demand).
void write_csv(const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Banner helper: every bench prints what it reproduces and at which scale.
void print_banner(const std::string& title, const std::string& paper_item,
                  double scale);

}  // namespace pd::bench
