// robust_planning — the paper's motivating workload (§I-II): optimize a plan
// that stays good under patient-setup uncertainty.  Generates setup-error
// scenario matrices for a prostate beam, runs worst-case robust optimization
// (every iteration costs one SpMV per scenario, forward and transposed),
// and compares the nominal-only plan against the robust plan with DVH
// metrics across all scenarios.

#include <iostream>

#include "cases/cases.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "opt/dvh.hpp"
#include "opt/robust.hpp"
#include "sparse/reference.hpp"

namespace {

struct WorstCaseReport {
  double objective = 0.0;   ///< max scenario objective (what robust optimizes)
  double target_d95 = 1e300;
};

WorstCaseReport evaluate_worst_case(const pd::phantom::Phantom& patient,
                                    const pd::opt::DoseObjective& goals,
                                    const std::vector<pd::sparse::CsrF64>& scenarios,
                                    const std::vector<double>& weights) {
  WorstCaseReport report;
  for (const auto& s : scenarios) {
    std::vector<double> dose(s.num_rows);
    pd::sparse::reference_spmv(s, weights, dose);
    report.objective = std::max(report.objective, goals.value(dose));
    const auto dvh = pd::opt::Dvh::for_roi(patient, pd::phantom::Roi::kTarget,
                                           dose);
    report.target_d95 = std::min(report.target_d95, dvh.dose_at_volume(0.95));
  }
  return report;
}

}  // namespace

int main() {
  const auto def = pd::cases::prostate_case(/*scale=*/0.3);
  const auto patient = pd::cases::build_phantom(def);

  // Nominal + four lateral/axial setup shifts of 3 mm.
  const std::vector<pd::phantom::Vec3> shifts = {
      {3.0, 0.0, 0.0}, {-3.0, 0.0, 0.0}, {0.0, 0.0, 3.0}, {0.0, 0.0, -3.0}};
  const auto scenarios =
      pd::cases::generate_setup_scenarios(def, patient, /*beam=*/0, shifts);
  std::cout << "Scenarios: " << scenarios.size() << " ("
            << scenarios[0].num_rows << " voxels x " << scenarios[0].num_cols
            << " spots each)\n";

  // Clinical goals scaled to the achievable dose range.
  std::vector<double> probe(scenarios[0].num_rows);
  pd::sparse::reference_spmv(scenarios[0],
                             std::vector<double>(scenarios[0].num_cols, 1.0),
                             probe);
  double max_dose = 0.0;
  for (const double d : probe) max_dose = std::max(max_dose, d);
  const double prescription = 0.5 * max_dose;
  const auto goals = pd::opt::DoseObjective::standard_goals(
      patient, prescription, 0.4 * prescription);

  // Plan 1: conventional (nominal scenario only).
  pd::opt::RobustConfig nominal_cfg;
  nominal_cfg.max_iterations = 60;
  pd::opt::RobustPlanOptimizer nominal_opt({scenarios[0]}, goals,
                                           pd::gpusim::make_a100(), nominal_cfg);
  const auto nominal = nominal_opt.optimize();

  // Plan 2: worst-case robust over all scenarios.
  pd::opt::RobustConfig robust_cfg;
  robust_cfg.max_iterations = 60;
  robust_cfg.mode = pd::opt::RobustMode::kWorstCase;
  pd::opt::RobustPlanOptimizer robust_opt(
      std::vector<pd::sparse::CsrF64>(scenarios), goals,
      pd::gpusim::make_a100(), robust_cfg);
  const auto robust = robust_opt.optimize();

  const WorstCaseReport nominal_report =
      evaluate_worst_case(patient, goals, scenarios, nominal.spot_weights);
  const WorstCaseReport robust_report =
      evaluate_worst_case(patient, goals, scenarios, robust.spot_weights);

  pd::TextTable table({"plan", "iterations", "SpMV products",
                       "worst-scenario objective", "worst-scenario target D95"});
  table.add_row({"nominal", std::to_string(nominal.iterations),
                 std::to_string(nominal.spmv_count),
                 pd::fmt_double(nominal_report.objective, 2),
                 pd::fmt_double(nominal_report.target_d95, 3)});
  table.add_row({"robust (worst-case)", std::to_string(robust.iterations),
                 std::to_string(robust.spmv_count),
                 pd::fmt_double(robust_report.objective, 2),
                 pd::fmt_double(robust_report.target_d95, 3)});
  std::cout << table.str() << "\n";
  std::cout << "Prescription: " << pd::fmt_double(prescription, 3)
            << ".  Robust planning needs ~" << scenarios.size()
            << "x the dose calculations per iteration — the cost the paper's "
               "GPU kernel exists to pay for.\n";
  return 0;
}
