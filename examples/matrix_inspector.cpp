// matrix_inspector — generate the paper's evaluation cases and inspect the
// dose-deposition-matrix structure (Table I + Figure 2 style output).
//
// Usage: matrix_inspector [--scale S] [--case liver|prostate|all]

#include <iostream>

#include "cases/cases.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  pd::CliParser cli("matrix_inspector",
                    "inspect generated dose deposition matrices");
  cli.add_option("scale", "1.0", "case scale (1.0 = repository mini default)");
  cli.add_option("case", "all", "which case to generate: liver, prostate, all");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const double scale = std::stod(cli.get_env_or("scale", "PROTONDOSE_SCALE"));
  const std::string which = cli.get("case");

  std::vector<pd::cases::BeamDataset> beams;
  if (which == "all") {
    beams = pd::cases::generate_all_beams(scale);
  } else {
    const auto def = which == "liver" ? pd::cases::liver_case(scale)
                                      : pd::cases::prostate_case(scale);
    beams = pd::cases::generate_case_beams(def);
  }

  pd::TextTable table({"beam", "rows", "cols", "nnz", "nnz ratio", "size",
                       "empty rows", "mean nnz/nonempty", "max row",
                       "<32 nnz"});
  for (const auto& ds : beams) {
    const auto& s = ds.stats;
    table.add_row({ds.label, std::to_string(s.rows), std::to_string(s.cols),
                   std::to_string(s.nnz), pd::fmt_percent(s.density, 2),
                   pd::fmt_bytes(static_cast<double>(s.csr_bytes(2, 4))),
                   pd::fmt_percent(s.empty_row_fraction, 1),
                   pd::fmt_double(s.mean_nnz_per_nonempty_row, 1),
                   std::to_string(s.max_row_nnz),
                   pd::fmt_percent(s.frac_nonempty_below_warp, 1)});
  }
  std::cout << table.str() << "\n";

  for (const auto& ds : beams) {
    if (ds.label.find('1') == std::string::npos) {
      continue;  // Figure 2 shows beam 1 of each case
    }
    std::cout << "Cumulative row-length histogram (" << ds.label << "):\n";
    for (const auto& p : pd::sparse::cumulative_row_length_histogram(ds.stats, 12)) {
      std::cout << "  rows with nnz <= " << p.row_length << ": "
                << pd::fmt_percent(p.cumulative_fraction, 1) << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
