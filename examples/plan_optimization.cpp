// plan_optimization — a full treatment-planning loop on the prostate case:
// generate both parallel-opposed beams, combine them into one dose deposition
// matrix, set clinical goals (uniform target dose, OAR tolerances), and run
// the projected-gradient optimizer whose every iteration exercises the
// paper's SpMV kernel (forward and transposed).

#include <iostream>

#include "cases/cases.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "opt/dvh.hpp"
#include "opt/optimizer.hpp"
#include "opt/plan.hpp"
#include "sparse/reference.hpp"

int main() {
  const auto def = pd::cases::prostate_case(/*scale=*/0.25);
  const pd::phantom::Phantom patient = pd::cases::build_phantom(def);
  auto beams = pd::cases::generate_case_beams(def);

  // Both parallel-opposed beams in one TreatmentPlan: the optimizer sees all
  // spots as one weight vector.
  pd::opt::TreatmentPlan plan;
  for (std::size_t b = 0; b < beams.size(); ++b) {
    plan.add_beam("beam" + std::to_string(b + 1), def.gantry_angles_deg[b],
                  std::move(beams[b].beam.matrix));
  }
  pd::sparse::CsrF64 D = plan.combined_matrix();
  std::cout << "Plan matrix: " << D.num_rows << " voxels x " << D.num_cols
            << " spots (" << plan.num_beams() << " beams), " << D.nnz()
            << " non-zeros\n";

  // Clinical goals: 60 Gy to the target, keep OARs under 25 Gy.  The dose
  // scale of the synthetic engine is arbitrary, so normalize the
  // prescription to the achievable range first.
  std::vector<double> unit(D.num_cols, 1.0);
  std::vector<double> probe(D.num_rows, 0.0);
  pd::sparse::reference_spmv(D, unit, probe);
  double max_unit_dose = 0.0;
  for (double d : probe) max_unit_dose = std::max(max_unit_dose, d);
  const double prescription = 0.6 * max_unit_dose;
  const double tolerance = 0.25 * max_unit_dose;

  pd::opt::DoseObjective goals =
      pd::opt::DoseObjective::standard_goals(patient, prescription, tolerance);

  pd::opt::OptimizerConfig cfg;
  cfg.max_iterations = 30;
  pd::opt::PlanOptimizer optimizer(D, std::move(goals), pd::gpusim::make_a100(),
                                   cfg);
  const pd::opt::OptimizerResult result = optimizer.optimize();

  std::cout << "Optimizer ran " << result.iterations << " iterations ("
            << result.spmv_count << " SpMV products, converged="
            << (result.converged ? "yes" : "no") << ")\n";
  std::cout << "Objective: initial " << pd::fmt_sci(result.objective_history.front())
            << " -> final " << pd::fmt_sci(result.objective_history.back()) << "\n";

  // Clinical plan evaluation: DVH metrics per structure.
  const auto target_dvh =
      pd::opt::Dvh::for_roi(patient, pd::phantom::Roi::kTarget, result.dose);
  const auto oar_dvh =
      pd::opt::Dvh::for_roi(patient, pd::phantom::Roi::kOar, result.dose);
  pd::TextTable dvh_table({"structure", "mean", "D95", "D2", "V(prescription)"});
  dvh_table.add_row({"target", pd::fmt_double(target_dvh.mean_dose(), 3),
                     pd::fmt_double(target_dvh.dose_at_volume(0.95), 3),
                     pd::fmt_double(target_dvh.dose_at_volume(0.02), 3),
                     pd::fmt_percent(target_dvh.volume_at_dose(prescription), 1)});
  dvh_table.add_row({"OARs", pd::fmt_double(oar_dvh.mean_dose(), 3),
                     pd::fmt_double(oar_dvh.dose_at_volume(0.95), 3),
                     pd::fmt_double(oar_dvh.dose_at_volume(0.02), 3),
                     pd::fmt_percent(oar_dvh.volume_at_dose(prescription), 1)});
  // Deliverability post-processing: drop/raise sub-minimum spots and report
  // the per-beam weight split.
  auto deliverable = result.spot_weights;
  const std::size_t rounded =
      pd::opt::TreatmentPlan::apply_minimum_spot_weight(deliverable, 0.02);
  double beam1_sum = 0.0, beam2_sum = 0.0;
  for (const double w : plan.beam_weights(0, deliverable)) beam1_sum += w;
  for (const double w : plan.beam_weights(1, deliverable)) beam2_sum += w;
  std::cout << "Deliverability: " << rounded
            << " spots rounded to the minimum MU; beam weight split "
            << pd::fmt_double(beam1_sum, 1) << " / "
            << pd::fmt_double(beam2_sum, 1) << "\n";

  std::cout << "Prescription: " << pd::fmt_double(prescription, 3)
            << ", tolerance: " << pd::fmt_double(tolerance, 3) << "\n"
            << dvh_table.str()
            << "Target homogeneity index: "
            << pd::fmt_double(pd::opt::homogeneity_index(target_dvh), 3)
            << ", conformity index: "
            << pd::fmt_double(pd::opt::conformity_index(
                   patient, result.dose, 0.95 * prescription), 3)
            << "\n";
  return 0;
}
