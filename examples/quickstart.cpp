// quickstart — the 60-second tour of the protondose public API:
//   1. build a synthetic patient (liver phantom),
//   2. run the Monte Carlo pencil-beam engine to get a dose deposition matrix,
//   3. hand it to DoseEngine (the paper's mixed half/double GPU kernel),
//   4. compute a dose distribution and look at the performance estimate.

#include <iostream>

#include "cases/cases.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"

int main() {
  // 1-2. A small liver case: phantom + one beam's dose deposition matrix.
  const pd::cases::CaseDefinition def = pd::cases::liver_case(/*scale=*/0.25);
  const pd::phantom::Phantom patient = pd::cases::build_phantom(def);
  pd::mc::GeneratedBeam beam = pd::cases::generate_beam(def, patient, /*beam=*/0);

  std::cout << "Generated dose deposition matrix: "
            << beam.matrix.num_rows << " voxels x " << beam.matrix.num_cols
            << " spots, " << beam.matrix.nnz() << " non-zeros\n";

  // 3. Dose engine on a simulated A100, mixed half/double (the paper's mode).
  pd::kernels::DoseEngine engine(std::move(beam.matrix), pd::gpusim::make_a100());

  // 4. Uniform spot weights -> dose.  Rerunning with a different schedule
  // seed must give bitwise-identical dose (the reproducibility guarantee).
  const std::vector<double> weights(engine.num_spots(), 1.0);
  const std::vector<double> dose = engine.compute(weights, /*schedule_seed=*/1);
  const std::vector<double> dose2 = engine.compute(weights, /*schedule_seed=*/2);

  double max_dose = 0.0;
  for (double d : dose) max_dose = std::max(max_dose, d);
  std::cout << "Max voxel dose: " << max_dose << " (arbitrary units)\n";
  std::cout << "Bitwise reproducible across GPU schedules: "
            << (dose == dose2 ? "yes" : "NO — bug!") << "\n";

  const auto est = engine.last_estimate();
  std::cout << "Modeled on " << "A100" << ": "
            << pd::fmt_double(est.gflops, 1) << " GFLOP/s, "
            << pd::fmt_double(est.dram_gbs, 1) << " GB/s ("
            << pd::fmt_percent(est.bandwidth_fraction, 1)
            << " of peak), OI=" << pd::fmt_double(est.operational_intensity, 3)
            << " FLOP/byte\n";
  return 0;
}
