// device_roofline — run the paper's kernel on one generated beam across the
// three simulated GPUs (A100 / V100 / P100) and draw each device's roofline
// with the measured point (Figures 3 and 7 in miniature).

#include <iostream>

#include "cases/cases.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "kernels/dose_engine.hpp"
#include "roofline/roofline.hpp"

int main() {
  const auto def = pd::cases::liver_case(/*scale=*/0.25);
  const auto patient = pd::cases::build_phantom(def);
  auto beam = pd::cases::generate_beam(def, patient, 0);
  std::cout << "liver beam 1 (mini): " << beam.matrix.num_rows << " x "
            << beam.matrix.num_cols << ", nnz " << beam.matrix.nnz() << "\n\n";

  const std::vector<double> weights(beam.matrix.num_cols, 1.0);
  for (const auto& spec : {pd::gpusim::make_a100(), pd::gpusim::make_v100(),
                           pd::gpusim::make_p100()}) {
    pd::kernels::DoseEngine engine(pd::sparse::CsrF64(beam.matrix), spec);
    engine.compute(weights);
    const auto est = engine.last_estimate();

    const auto model =
        pd::roofline::make_roofline(spec, pd::gpusim::FlopPrecision::kFp64);
    std::vector<pd::roofline::RooflinePoint> pts = {
        {"Half/Double", est.operational_intensity, est.gflops}};
    std::cout << pd::roofline::ascii_roofline(model, pts, 64, 14) << "\n";
  }
  return 0;
}
