// beam_angle_study — choosing beam directions, the planning decision that
// precedes spot-weight optimization.  For the liver case, every candidate
// pair of gantry angles gets its own dose deposition matrices (the expensive
// Monte Carlo step), a short optimization, and a DVH/conformity scorecard —
// a realistic "many plans per patient" workload: each candidate costs a full
// matrix generation plus an optimizer run full of SpMVs, which is precisely
// the throughput problem the paper attacks.

#include <iostream>

#include "cases/cases.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "opt/dvh.hpp"
#include "opt/optimizer.hpp"
#include "opt/plan.hpp"
#include "sparse/reference.hpp"

int main() {
  const auto def = pd::cases::liver_case(/*scale=*/0.25);
  const auto patient = pd::cases::build_phantom(def);

  const std::vector<std::pair<double, double>> candidates = {
      {0.0, 90.0}, {0.0, 135.0}, {45.0, 135.0}, {45.0, 225.0}};

  pd::TextTable table({"angles", "spots", "final objective", "target D95",
                       "conformity", "SpMV products"});
  std::string best_label;
  double best_objective = 1e300;
  for (const auto& [a1, a2] : candidates) {
    // Build the two-beam plan for this candidate.
    pd::cases::CaseDefinition custom = def;
    custom.gantry_angles_deg = {a1, a2};
    pd::opt::TreatmentPlan plan;
    for (std::size_t b = 0; b < 2; ++b) {
      auto beam = pd::cases::generate_beam(custom, patient, b);
      plan.add_beam("beam" + std::to_string(b),
                    custom.gantry_angles_deg[b], std::move(beam.matrix));
    }
    const auto D = plan.combined_matrix();

    // Prescription scaled to this candidate's reachable dose.
    std::vector<double> probe(D.num_rows);
    pd::sparse::reference_spmv(D, std::vector<double>(D.num_cols, 1.0), probe);
    double max_dose = 0.0;
    for (const double d : probe) max_dose = std::max(max_dose, d);
    const double rx = 0.5 * max_dose;

    pd::opt::OptimizerConfig cfg;
    cfg.method = pd::opt::OptimizerMethod::kLbfgs;
    cfg.max_iterations = 15;
    pd::opt::PlanOptimizer optimizer(
        D, pd::opt::DoseObjective::standard_goals(patient, rx, 0.4 * rx),
        pd::gpusim::make_a100(), cfg);
    const auto result = optimizer.optimize();

    const auto dvh =
        pd::opt::Dvh::for_roi(patient, pd::phantom::Roi::kTarget, result.dose);
    // Normalize the objective by rx^2 so candidates with different dose
    // scales compare fairly.
    const double norm_obj = result.objective_history.back() / (rx * rx);
    const std::string label =
        pd::fmt_double(a1, 0) + "/" + pd::fmt_double(a2, 0);
    table.add_row({label, std::to_string(D.num_cols),
                   pd::fmt_double(norm_obj, 3),
                   pd::fmt_double(dvh.dose_at_volume(0.95) / rx, 3),
                   pd::fmt_double(pd::opt::conformity_index(
                       patient, result.dose, 0.95 * rx), 3),
                   std::to_string(result.spmv_count)});
    if (norm_obj < best_objective) {
      best_objective = norm_obj;
      best_label = label;
    }
  }
  std::cout << table.str() << "\n";
  std::cout << "Best candidate by normalized objective: " << best_label
            << ".  Evaluating " << candidates.size()
            << " candidates multiplies the whole matrix-generation + "
               "optimization pipeline — the planning-throughput case for the "
               "paper's fast dose calculation.\n";
  return 0;
}
